#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>

#include "common/error.h"

namespace otem::strings {

std::string trim(std::string_view s) {
  auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view s) {
  const std::string t = trim(s);
  OTEM_REQUIRE(!t.empty(), "cannot parse empty string as double");
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  OTEM_REQUIRE(end == t.c_str() + t.size(),
               "trailing characters parsing double: '" + t + "'");
  return v;
}

long parse_long(std::string_view s) {
  const std::string t = trim(s);
  long v = 0;
  auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  OTEM_REQUIRE(ec == std::errc() && ptr == t.data() + t.size(),
               "cannot parse integer: '" + t + "'");
  return v;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string hex_u64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::uint64_t parse_hex_u64(std::string_view s) {
  OTEM_REQUIRE(s.size() == 16, "hex_u64 wants exactly 16 digits, got '" +
                                   std::string(s) + "'");
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    else
      OTEM_REQUIRE(false, "bad hex digit in '" + std::string(s) + "'");
  }
  return v;
}

std::string hex_double(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return hex_u64(bits);
}

double parse_hex_double(std::string_view s) {
  const std::uint64_t bits = parse_hex_u64(s);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace otem::strings
