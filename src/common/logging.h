// logging.h — minimal leveled logging, thread-safe by construction.
//
// The library itself is silent by default (level = kWarn); examples and
// benches raise the level for progress output. No global mutable state
// beyond an atomic level and target fd, no allocation on the fast path
// when the level filters the message out.
//
// Each emitted line is fully formatted in memory —
//   2026-08-06T12:34:56.789Z [otem WARN  t03] message
// (ISO-8601 UTC timestamp, level tag, per-thread id) — and handed to
// the OS in a SINGLE write() syscall, so concurrent writers (fleet
// missions on the thread pool) can interleave lines but never bytes
// within a line. tests/test_obs.cpp hammers this from the pool.
#pragma once

#include <sstream>
#include <string>

namespace otem::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current threshold; messages below it are dropped. Both accessors
/// are atomic (safe to flip mid-run from any thread).
Level level();
void set_level(Level level);

/// Target file descriptor (default 2 = stderr). Tests point this at a
/// temp file to assert on the emitted lines.
int fd();
void set_fd(int fd);

/// Emit one line at `level` (no-op if filtered). One write() syscall.
void write(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// The formatted line for `message` as write() would emit it,
/// including the trailing newline — exposed for tests.
std::string format_line(Level level, const std::string& message);
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, detail::cat(std::forward<Args>(args)...));
}

template <typename... Args>
void info(Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, detail::cat(std::forward<Args>(args)...));
}

template <typename... Args>
void warn(Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, detail::cat(std::forward<Args>(args)...));
}

template <typename... Args>
void error(Args&&... args) {
  if (level() <= Level::kError)
    write(Level::kError, detail::cat(std::forward<Args>(args)...));
}

}  // namespace otem::log
