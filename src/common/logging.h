// logging.h — minimal leveled logging to stderr.
//
// The library itself is silent by default (level = kWarn); examples and
// benches raise the level for progress output. No global mutable state
// beyond the level, no allocation on the fast path when the level filters
// the message out.
#pragma once

#include <sstream>
#include <string>

namespace otem::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current threshold; messages below it are dropped.
Level level();
void set_level(Level level);

/// Emit one line at `level` (no-op if filtered).
void write(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, detail::cat(std::forward<Args>(args)...));
}

template <typename... Args>
void info(Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, detail::cat(std::forward<Args>(args)...));
}

template <typename... Args>
void warn(Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, detail::cat(std::forward<Args>(args)...));
}

template <typename... Args>
void error(Args&&... args) {
  if (level() <= Level::kError)
    write(Level::kError, detail::cat(std::forward<Args>(args)...));
}

}  // namespace otem::log
