// json.h — minimal JSON value tree, serializer and parser.
//
// Just enough JSON for result reports (sim/report.h) and the serve
// protocol (serve/protocol.h): objects keep insertion order, numbers
// print with %.12g, non-finite doubles encode as null, every control
// character (U+0000–U+001F) in a string escapes as \uXXXX (or the
// short \b \t \n \f \r forms), so an emitted document is always one
// well-formed line. Json::parse is a strict recursive-descent reader
// of the same dialect (full \uXXXX incl. surrogate pairs → UTF-8, a
// nesting-depth guard against hostile input) — dump() and parse()
// round-trip each other, which the serve daemon relies on to echo
// client-supplied request ids verbatim.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace otem {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}           // NOLINT
  Json(double v) : type_(Type::kNumber), number_(v) {}     // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}            // NOLINT
  Json(long v) : Json(static_cast<double>(v)) {}           // NOLINT
  Json(size_t v) : Json(static_cast<double>(v)) {}         // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  /// Strict parse of one JSON document (trailing whitespace allowed,
  /// trailing garbage is an error). Throws otem::SimError with a byte
  /// offset on malformed input or nesting deeper than kMaxParseDepth.
  static Json parse(std::string_view text);

  /// Parser recursion guard: documents nesting deeper than this are
  /// rejected (the serve codec feeds parse() untrusted network bytes).
  static constexpr int kMaxParseDepth = 64;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed readers; each throws otem::SimError on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Object lookup: the value at `key`, or nullptr when absent (or when
  /// *this is not an object — lookups on a mistyped node just miss).
  const Json* find(const std::string& key) const;

  /// Array element access; throws otem::SimError when out of range.
  const Json& at(size_t index) const;

  /// Underlying containers, for iteration. Empty for other types.
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Object: set key to value (appends; later sets of the same key
  /// overwrite). Returns *this for chaining. Throws if not an object.
  Json& set(const std::string& key, Json value);

  /// Array: append a value. Throws if not an array.
  Json& push(Json value);

  /// Convenience: array from a vector of doubles.
  static Json numbers(const std::vector<double>& values);

  size_t size() const;

  /// Serialize; indent > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 2) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                                // array
  std::vector<std::pair<std::string, Json>> members_;      // object
};

/// Write JSON to a file; throws otem::SimError on failure.
void write_json_file(const std::string& path, const Json& value);

}  // namespace otem
