// json.h — minimal JSON value tree and serializer.
//
// Just enough JSON for result reports (sim/report.h): objects keep
// insertion order, numbers print with %.12g, non-finite doubles encode
// as null. No parser — this library only EMITS JSON.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace otem {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}           // NOLINT
  Json(double v) : type_(Type::kNumber), number_(v) {}     // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}            // NOLINT
  Json(long v) : Json(static_cast<double>(v)) {}           // NOLINT
  Json(size_t v) : Json(static_cast<double>(v)) {}         // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }

  /// Object: set key to value (appends; later sets of the same key
  /// overwrite). Returns *this for chaining. Throws if not an object.
  Json& set(const std::string& key, Json value);

  /// Array: append a value. Throws if not an array.
  Json& push(Json value);

  /// Convenience: array from a vector of doubles.
  static Json numbers(const std::vector<double>& values);

  size_t size() const;

  /// Serialize; indent > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 2) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                                // array
  std::vector<std::pair<std::string, Json>> members_;      // object
};

/// Write JSON to a file; throws otem::SimError on failure.
void write_json_file(const std::string& path, const Json& value);

}  // namespace otem
