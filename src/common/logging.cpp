#include "common/logging.h"

#include <iostream>

namespace otem::log {

namespace {
Level g_level = Level::kWarn;

const char* tag(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

Level level() { return g_level; }

void set_level(Level lvl) { g_level = lvl; }

void write(Level lvl, const std::string& message) {
  if (lvl < g_level) return;
  std::cerr << "[otem " << tag(lvl) << "] " << message << '\n';
}

}  // namespace otem::log
