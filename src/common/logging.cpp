#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <ctime>

#if defined(_WIN32)
#include <io.h>
#define OTEM_LOG_WRITE ::_write
#else
#include <unistd.h>
#define OTEM_LOG_WRITE ::write
#endif

namespace otem::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::atomic<int> g_fd{2};

const char* tag(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF  ";
  }
  return "?";
}

/// Small per-thread id, assigned on first log call from that thread —
/// stable within a run, and far more readable than an OS thread id.
unsigned thread_tag() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1) + 1;
  return id;
}
}  // namespace

Level level() { return g_level.load(std::memory_order_relaxed); }
void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }

int fd() { return g_fd.load(std::memory_order_relaxed); }
void set_fd(int new_fd) { g_fd.store(new_fd, std::memory_order_relaxed); }

namespace detail {
std::string format_line(Level lvl, const std::string& message) {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &ts.tv_sec);
#else
  gmtime_r(&ts.tv_sec, &utc);
#endif
  char head[64];
  std::snprintf(head, sizeof head,
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ [otem %s t%02u] ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday,
                utc.tm_hour, utc.tm_min, utc.tm_sec,
                static_cast<int>(ts.tv_nsec / 1000000), tag(lvl),
                thread_tag());
  std::string line;
  line.reserve(sizeof head + message.size() + 1);
  line += head;
  line += message;
  line += '\n';
  return line;
}
}  // namespace detail

void write(Level lvl, const std::string& message) {
  if (lvl < level()) return;
  const std::string line = detail::format_line(lvl, message);
  // One syscall per line: the kernel serialises concurrent write()s to
  // the same fd, so lines from different threads never shear.
  (void)!OTEM_LOG_WRITE(fd(), line.data(),
                        static_cast<unsigned>(line.size()));
}

}  // namespace otem::log
