#include "common/config.h"

#include <fstream>

#include "common/error.h"
#include "common/logging.h"
#include "common/strings.h"

namespace otem {

Config::Config() : consumed_(std::make_shared<std::set<std::string>>()) {}

void Config::touch(const std::string& key) const { consumed_->insert(key); }

void Config::set_pair(std::string_view pair) {
  const auto eq = pair.find('=');
  OTEM_REQUIRE(eq != std::string_view::npos,
               "config override must be key=value, got: '" +
                   std::string(pair) + "'");
  const std::string key = strings::trim(pair.substr(0, eq));
  const std::string value = strings::trim(pair.substr(eq + 1));
  OTEM_REQUIRE(!key.empty(), "config key must be non-empty");
  // A key repeated within one command line / request is almost always a
  // mistake (the later value silently shadowing the earlier one is how
  // "repeats=10 ... repeats=1" experiments go wrong), so say so. Last
  // one still wins — both orders warn, only the surviving value differs.
  const auto it = values_.find(key);
  if (it != values_.end() && it->second != value) {
    log::warn("duplicate config key '", key, "': value '", it->second,
              "' overridden by '", value, "'");
  }
  values_[key] = value;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void Config::set(const std::string& key, double value) {
  values_[key] = strings::format_double(value, 12);
}

bool Config::has(const std::string& key) const {
  touch(key);
  return values_.count(key) > 0;
}

double Config::get_double(const std::string& key, double fallback) const {
  touch(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : strings::parse_double(it->second);
}

long Config::get_long(const std::string& key, long fallback) const {
  touch(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : strings::parse_long(it->second);
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  touch(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  touch(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string v = strings::to_lower(it->second);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw SimError("config key '" + key + "' is not a boolean: '" + it->second +
                 "'");
}

Config Config::from_file(const std::string& path) {
  std::ifstream f(path);
  OTEM_REQUIRE(f.good(), "cannot open config file: " + path);
  Config cfg;
  std::string line;
  while (std::getline(f, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::string trimmed = strings::trim(line);
    if (trimmed.empty()) continue;
    cfg.set_pair(trimmed);
  }
  return cfg;
}

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.find('=') != std::string_view::npos) cfg.set_pair(arg);
  }
  return cfg;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (!consumed_->count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace otem
