// timeseries.h — uniformly sampled time series with summary statistics.
//
// The simulator, the drive-cycle generator and the benchmark harness all
// exchange data as TimeSeries: a fixed sample period dt plus a value
// vector. Keeping the representation uniform makes resampling, alignment
// and statistics trivial and avoids per-sample timestamp storage.
#pragma once

#include <cstddef>
#include <vector>

namespace otem {

/// Uniformly sampled series: value(k) is the sample at time t0 + k*dt.
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(double dt, std::vector<double> values, double t0 = 0.0);

  double dt() const { return dt_; }
  double t0() const { return t0_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Total covered duration [s]: (size-1)*dt for non-empty series.
  double duration() const;

  double operator[](size_t k) const { return values_[k]; }
  double& operator[](size_t k) { return values_[k]; }
  const std::vector<double>& values() const { return values_; }

  void push_back(double v) { values_.push_back(v); }
  void reserve(size_t n) { values_.reserve(n); }

  /// Linear interpolation at arbitrary time t (clamped to the domain).
  double at_time(double t) const;

  // --- statistics -------------------------------------------------------
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  /// Root of the mean square of samples.
  double rms() const;
  /// Trapezoidal integral over time, i.e. sum of v*dt (units: value*s).
  double integral() const;
  /// Mean of only the positive samples (0 if none) — used for average
  /// *consumed* power where regen samples are negative.
  double mean_positive() const;

  // --- transforms -------------------------------------------------------
  /// Concatenate `n` repetitions of this series (e.g. "drive US06 five
  /// times", as in the paper's Figs. 6-7).
  TimeSeries repeated(size_t n) const;

  /// Resample to a new period via linear interpolation.
  TimeSeries resampled(double new_dt) const;

  /// Elementwise map through `f` (takes/returns double).
  template <typename F>
  TimeSeries mapped(F&& f) const {
    std::vector<double> out;
    out.reserve(values_.size());
    for (double v : values_) out.push_back(f(v));
    return TimeSeries(dt_, std::move(out), t0_);
  }

 private:
  double dt_ = 1.0;
  double t0_ = 0.0;
  std::vector<double> values_;
};

}  // namespace otem
