#include "common/rng.h"

#include <cmath>

namespace otem {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  has_spare_ = true;
  return u * mul;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's unbiased bounded generation (rejection variant).
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

}  // namespace otem
