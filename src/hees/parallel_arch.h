// parallel_arch.h — Parallel HEES architecture (paper Section II-C.1,
// baseline [15]).
//
// Battery pack and ultracapacitor are permanently connected in parallel
// across the load (Fig. 3, both switches closed): Eqs. (10)-(13)
//
//   P_l = V_l I_l,  I_l = I_b + I_c,  V_l = V_b - R_b I_b,  V_l = V_c
//
// Because the bank must share the battery's voltage domain, the rated
// capacitance is reflected to the pack voltage at equal stored energy:
// C_eff = C (V_r / V_ref)^2 with V_ref = pack Voc at 100 % SoC; the
// SoE<->voltage law (Eq. 8) is preserved. A pack-voltage bank is a long
// series string, so its terminal resistance R_c is NOT negligible at
// this voltage level (the per-cell 2.2 mOhm the paper quotes scales
// with the series count); R_c both dissipates on every ultracap current
// pulse and weakens the low-pass filtering of the battery (transients
// divide by conductance between the R_b and R_c paths). This is what
// makes the unmanaged parallel architecture the losing baseline of the
// paper's Table I: permanent circulation losses plus poorly filtered
// battery current, with no thermal management at all.
//
// There is no controller and no active cooling in this architecture:
// the coolant loop runs passively at ambient inlet temperature.
//
// The inner dynamics (UC voltage relaxation toward battery Voc) are
// stiff relative to the 1 s plant step for small banks, so the step
// integrates internally with sub-steps sized from the R_b C_eff time
// constant.
#pragma once

#include "battery/aging.h"
#include "battery/battery_model.h"
#include "hees/arch_step.h"
#include "ultracap/ultracap_model.h"

namespace otem::hees {

class ParallelArchitecture {
 public:
  /// `cap_path_resistance` is the bus-level ultracap branch resistance
  /// R_c [ohm] (bank ESR + interconnect at pack voltage).
  ParallelArchitecture(battery::PackModel battery,
                       ultracap::BankModel ultracap,
                       double cap_path_resistance = 0.8);

  double cap_path_resistance() const { return r_c_; }

  const battery::PackModel& battery() const { return battery_; }
  const ultracap::BankModel& ultracap() const { return ultracap_; }

  /// Reference (reflection) voltage: pack Voc at 100 % SoC.
  double reference_voltage() const { return v_ref_; }

  /// Effective capacitance at the pack voltage domain [F].
  double effective_capacitance() const;

  /// Ultracap terminal voltage in the pack voltage domain at SoE [%].
  double cap_bus_voltage(double soe_percent) const;

  /// SoE at which the bank voltage equals the battery's open-circuit
  /// voltage at `soc_percent` — the rest point the permanently-parallel
  /// connection relaxes to.
  double equilibrium_soe(double soc_percent) const;

  /// Resolve load power p_load [W] (discharge +, regen -) over dt.
  ArchStep step(double soc_percent, double soe_percent, double t_battery_k,
                double p_load_w, double dt) const;

  /// Batched step over n lanes of contiguous state/load arrays. The
  /// single-substep electro-chemical kernel (the only case at the 1 s
  /// plant step — tau is O(100 s)) runs as a flat branch-free SoA sweep
  /// built on fastmath::exp, so the compiler vectorizes it; because the
  /// scalar step() inlines the exact same kernel, results stay
  /// bit-identical to the scalar path. Lanes needing substeps or a
  /// non-unit fade exponent fall back to step() per lane. Lanes where
  /// `active[l]` is 0 are skipped and get a default ArchStep (active ==
  /// nullptr means all lanes live).
  void step_lanes(const double* soc_percent, const double* soe_percent,
                  const double* t_battery_k, const double* p_load_w,
                  double dt, ArchStep* out, size_t n,
                  const unsigned char* active = nullptr) const;

 private:
  battery::PackModel battery_;
  ultracap::BankModel ultracap_;
  battery::CapacityFadeModel fade_;
  double v_ref_;
  double r_c_;
  double c_eff_;  ///< cached effective_capacitance() (params-only)
};

}  // namespace otem::hees
