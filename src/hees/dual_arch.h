// dual_arch.h — Dual HEES architecture with switches (paper Section
// II-C.1, baseline [16]).
//
// Two switches S_b and S_c (Fig. 3) connect the battery and/or the
// ultracapacitor to the load:
//   kBatteryOnly — S_b closed, S_c open: the battery alone carries the
//     load; the UC floats (holds its charge).
//   kUltracapOnly — S_b open, S_c closed: the UC alone carries the load
//     while the battery rests and cools passively. This is [16]'s
//     thermal-management action.
//   kParallel — both closed: identical to the parallel architecture.
//   kRecharge — the battery serves the load AND pushes a current-limited
//     charge into the bank. A bare parallel reconnection of a deeply
//     discharged bank would draw an unbounded inrush (V_b - V_c)/R_b,
//     so real dual systems recharge through a current limiter; the
//     limited recharge still adds battery current and heat — the
//     recharge self-heating the paper's Fig. 1 discussion highlights.
//
// The mode is chosen per step by a controller (core/dual_methodology);
// this class only applies the electrical consequences.
#pragma once

#include "battery/aging.h"
#include "battery/battery_model.h"
#include "hees/arch_step.h"
#include "hees/parallel_arch.h"
#include "ultracap/ultracap_model.h"

namespace otem::hees {

enum class DualMode { kBatteryOnly, kUltracapOnly, kParallel, kRecharge };

const char* to_string(DualMode mode);

class DualArchitecture {
 public:
  DualArchitecture(battery::PackModel battery, ultracap::BankModel ultracap);

  const battery::PackModel& battery() const { return parallel_.battery(); }
  const ultracap::BankModel& ultracap() const { return parallel_.ultracap(); }

  /// Ultracap voltage in the shared (pack) voltage domain.
  double cap_bus_voltage(double soe_percent) const {
    return parallel_.cap_bus_voltage(soe_percent);
  }

  /// Charge power pushed into the bank in kRecharge mode [W].
  double recharge_power_w() const { return recharge_power_w_; }
  void set_recharge_power_w(double p_w);

  /// Resolve load power p_load [W] over dt under the given switch mode.
  /// In kUltracapOnly, a load the bank cannot carry (SoE floor or power
  /// rating) falls back to the battery for the shortfall and the step is
  /// flagged infeasible — the switch-over [16] relies on is broken, the
  /// situation Fig. 1 shows for undersized banks.
  ArchStep step(double soc_percent, double soe_percent, double t_battery_k,
                double p_load_w, DualMode mode, double dt) const;

  /// Batched step over n lanes with a per-lane switch mode. Lanes where
  /// `active[l]` is 0 are skipped and get a default ArchStep (active ==
  /// nullptr means all lanes live). Per lane this calls step(), so
  /// results are bit-identical to the scalar path.
  void step_lanes(const double* soc_percent, const double* soe_percent,
                  const double* t_battery_k, const double* p_load_w,
                  const DualMode* mode, double dt, ArchStep* out, size_t n,
                  const unsigned char* active = nullptr) const;

 private:
  ArchStep battery_only_step(double soc, double soe, double tb, double p_load,
                             double dt) const;
  ArchStep ultracap_only_step(double soc, double soe, double tb,
                              double p_load, double dt) const;
  ArchStep recharge_step(double soc, double soe, double tb, double p_load,
                         double dt) const;

  double recharge_power_w_ = 8000.0;

  ParallelArchitecture parallel_;
  battery::CapacityFadeModel fade_;
};

}  // namespace otem::hees
