// converter.h — DC/DC converter with voltage-dependent efficiency
// (paper Section II-C.2).
//
// The hybrid architecture couples each storage to the DC bus through a
// converter whose efficiency drops as the storage-side voltage sags:
//   eta(V) = clamp(eta_max - droop * (1 - V/V_nom)^2, eta_min, eta_max)
// This is the mechanism behind the paper's observation that an overused
// ultracapacitor (large voltage swing, Eq. 8) degrades total HEES
// efficiency — and why OTEM keeps the UC near a high SoE. The quadratic
// form is smooth, so the MPC can differentiate through it.
//
// Sign convention: positive storage power = discharge toward the bus.
#pragma once

#include "common/config.h"

namespace otem::hees {

struct ConverterParams {
  double eta_max = 0.95;       ///< peak conversion efficiency
  double eta_min = 0.70;       ///< floor (clamp) at deep voltage sag
  double droop = 0.25;         ///< quadratic droop coefficient
  double nominal_voltage = 1;  ///< voltage of peak efficiency [V]

  /// Load overrides with the given key prefix (e.g. "hees.cap_conv.").
  static ConverterParams from_config(const Config& cfg,
                                     const std::string& prefix,
                                     const ConverterParams& defaults);
};

class Converter {
 public:
  explicit Converter(ConverterParams params);

  const ConverterParams& params() const { return params_; }

  /// eta(V) — smooth except at the eta_min clamp.
  double efficiency(double v) const;

  /// d eta / dV (0 in the clamped region).
  double efficiency_dv(double v) const;

  /// Storage-side power required/absorbed for a bus-side power request.
  /// p_bus >= 0 (deliver to bus): storage supplies p_bus / eta.
  /// p_bus <  0 (charge from bus): storage receives p_bus * eta.
  double storage_power_for_bus(double p_bus, double v) const;

  /// Inverse map: bus-side power produced by a storage-side power.
  double bus_power_for_storage(double p_storage, double v) const;

  /// Partial derivatives of storage_power_for_bus — used by the MPC
  /// adjoint. d_p is w.r.t. p_bus, d_v w.r.t. the storage voltage.
  void storage_power_partials(double p_bus, double v, double& d_p,
                              double& d_v) const;

 private:
  ConverterParams params_;
};

}  // namespace otem::hees
