#include "hees/converter.h"

#include <algorithm>

#include "common/error.h"

namespace otem::hees {

ConverterParams ConverterParams::from_config(const Config& cfg,
                                             const std::string& prefix,
                                             const ConverterParams& defaults) {
  ConverterParams p = defaults;
  p.eta_max = cfg.get_double(prefix + "eta_max", p.eta_max);
  p.eta_min = cfg.get_double(prefix + "eta_min", p.eta_min);
  p.droop = cfg.get_double(prefix + "droop", p.droop);
  p.nominal_voltage = cfg.get_double(prefix + "nominal_voltage",
                                     p.nominal_voltage);
  OTEM_REQUIRE(p.eta_max > 0.0 && p.eta_max <= 1.0,
               "converter eta_max must be in (0, 1]");
  OTEM_REQUIRE(p.eta_min > 0.0 && p.eta_min <= p.eta_max,
               "converter eta_min must be in (0, eta_max]");
  OTEM_REQUIRE(p.nominal_voltage > 0.0,
               "converter nominal voltage must be positive");
  return p;
}

Converter::Converter(ConverterParams params) : params_(params) {
  OTEM_REQUIRE(params_.nominal_voltage > 0.0,
               "converter nominal voltage must be positive");
}

double Converter::efficiency(double v) const {
  const double sag = 1.0 - v / params_.nominal_voltage;
  const double eta = params_.eta_max - params_.droop * sag * sag;
  return std::clamp(eta, params_.eta_min, params_.eta_max);
}

double Converter::efficiency_dv(double v) const {
  const double sag = 1.0 - v / params_.nominal_voltage;
  const double eta = params_.eta_max - params_.droop * sag * sag;
  // Efficiency is locally constant in the eta_min clamp region.
  if (eta < params_.eta_min) return 0.0;
  return 2.0 * params_.droop * sag / params_.nominal_voltage;
}

double Converter::storage_power_for_bus(double p_bus, double v) const {
  const double eta = efficiency(v);
  return p_bus >= 0.0 ? p_bus / eta : p_bus * eta;
}

double Converter::bus_power_for_storage(double p_storage, double v) const {
  const double eta = efficiency(v);
  return p_storage >= 0.0 ? p_storage * eta : p_storage / eta;
}

void Converter::storage_power_partials(double p_bus, double v, double& d_p,
                                       double& d_v) const {
  const double eta = efficiency(v);
  const double deta = efficiency_dv(v);
  if (p_bus >= 0.0) {
    d_p = 1.0 / eta;
    d_v = -p_bus * deta / (eta * eta);
  } else {
    d_p = eta;
    d_v = p_bus * deta;
  }
}

}  // namespace otem::hees
