// hybrid_arch.h — Hybrid HEES architecture (paper Section II-C.2).
//
// Battery and ultracapacitor each connect to the vehicle DC bus through
// their own DC/DC converter (Fig. 4), so the power drawn from each
// storage is an independent control input — the flexibility OTEM needs
// for energy migration (pre-charging the UC) and utilisation splitting.
// Converter efficiency is voltage-dependent (hees/converter.h), which
// is what couples the UC's SoE to total HEES efficiency.
//
// The architecture applies a pair of BUS-side power requests
// (p_bat_bus, p_cap_bus); physical limits (UC energy window and power
// rating, battery deliverable power) clamp the request, and any
// clamped-away shortfall on the UC branch is transparently shifted to
// the battery branch so the bus power balance holds.
#pragma once

#include "battery/aging.h"
#include "battery/battery_model.h"
#include "hees/arch_step.h"
#include "hees/converter.h"
#include "ultracap/ultracap_model.h"

namespace otem::hees {

struct HybridParams {
  ConverterParams battery_converter;   ///< nominal voltage <- pack Voc(100)
  ConverterParams cap_converter;       ///< nominal voltage <- UC rated V
  /// Battery power restriction [W] at the storage side — paper C6.
  double max_battery_power_w = 150000.0;

  /// Build defaults sized for the given storage models, with optional
  /// config overrides under "hees.".
  static HybridParams for_storages(const battery::PackModel& battery,
                                   const ultracap::BankModel& ultracap,
                                   const Config& cfg = Config());
};

class HybridArchitecture {
 public:
  HybridArchitecture(battery::PackModel battery, ultracap::BankModel ultracap,
                     HybridParams params);

  const battery::PackModel& battery() const { return battery_; }
  const ultracap::BankModel& ultracap() const { return ultracap_; }
  const Converter& battery_converter() const { return bat_conv_; }
  const Converter& cap_converter() const { return cap_conv_; }
  const HybridParams& params() const { return params_; }

  /// Apply bus-side requests for one step. The bus must receive
  /// p_bat_bus + p_cap_bus in total; clamped UC shortfall is shifted to
  /// the battery branch. `feasible` is false when even the battery
  /// cannot cover the final request.
  ArchStep step(double soc_percent, double soe_percent, double t_battery_k,
                double p_bat_bus_w, double p_cap_bus_w, double dt) const;

  /// Bus-side power the UC branch can actually deliver (+) this step.
  double cap_bus_discharge_limit(double soe_percent, double dt) const;

  /// Bus-side power the UC branch can actually absorb this step (>= 0).
  double cap_bus_charge_limit(double soe_percent, double dt) const;

 private:
  battery::PackModel battery_;
  ultracap::BankModel ultracap_;
  battery::CapacityFadeModel fade_;
  HybridParams params_;
  Converter bat_conv_;
  Converter cap_conv_;
};

}  // namespace otem::hees
