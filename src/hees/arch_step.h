// arch_step.h — common result of applying one architecture time step.
//
// Every architecture (parallel, dual, hybrid) resolves a power request
// into storage currents, updated storage states, heat and accumulated
// energy/ageing over one plant step. Battery temperature is held fixed
// within the step (thermal time constants are minutes; plant steps are
// ~1 s) — the thermal model consumes the returned heat afterwards.
#pragma once

namespace otem::hees {

struct ArchStep {
  // Currents averaged over the step.
  double i_bat_a = 0.0;      ///< battery pack current [A], discharge +
  double i_cap_a = 0.0;      ///< ultracap current [A] (bus/terminal level)

  // Updated storage states.
  double soc_next = 0.0;     ///< battery SoC [%]
  double soe_next = 0.0;     ///< ultracap SoE [%]

  // Thermal/ageing effects of the step.
  double q_bat_w = 0.0;      ///< mean battery heat generation [W]
  double qloss_percent = 0.0;///< capacity loss accumulated this step [%]

  // Energy bookkeeping over the step [J].
  double e_bat_j = 0.0;      ///< chemistry energy drawn from the battery
                             ///< (Voc * I integrated; negative on charge)
  double e_cap_j = 0.0;      ///< energy drawn from the ultracap terminal
  double e_loss_j = 0.0;     ///< resistive + conversion losses

  /// False when a request had to be clamped (storage limit hit); the
  /// simulator accumulates these as reliability violations.
  bool feasible = true;

  /// Bus power the architecture could NOT deliver this step [W]
  /// (mean over the step; 0 when the request was met). Distinguishes a
  /// 2 kW boundary graze from a 30 kW brown-out.
  double unmet_bus_w = 0.0;
};

}  // namespace otem::hees
