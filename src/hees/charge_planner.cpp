#include "hees/charge_planner.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace otem::hees {

ChargePlan simulate_migration(const battery::PackModel& battery,
                              const ultracap::BankModel& bank,
                              const Converter& cap_converter,
                              const ChargePlannerInputs& in,
                              const std::vector<double>& bus_power_w) {
  OTEM_REQUIRE(in.dt > 0.0, "planner step must be positive");
  OTEM_REQUIRE(in.soe_target_percent > in.soe_start_percent,
               "migration target must exceed the starting SoE");

  ChargePlan out;
  double soe = in.soe_start_percent;
  for (double p_bus : bus_power_w) {
    if (soe >= in.soe_target_percent) break;
    OTEM_REQUIRE(p_bus >= 0.0, "migration power must be non-negative");
    // Bank side: p_bus arrives through the converter.
    const double v_cap = bank.voltage(soe);
    const double eta = cap_converter.efficiency(v_cap);
    const double p_stored = p_bus * eta;
    soe = bank.step_soe(soe, -p_stored, in.dt);
    out.converter_loss_j += (p_bus - p_stored) * in.dt;

    // Battery side: supplies p_bus at its terminal.
    const battery::PowerSolve solve =
        battery.current_for_power(in.soc_percent, in.t_battery_k, p_bus);
    const double i = solve.current_a;
    out.battery_energy_j +=
        battery.open_circuit_voltage(in.soc_percent) * i * in.dt;
    out.battery_loss_j +=
        i * i * battery.internal_resistance(in.soc_percent, in.t_battery_k) *
        in.dt;
    ++out.steps;
  }
  out.final_soe_percent = soe;
  out.feasible = soe >= in.soe_target_percent - 1e-9;
  return out;
}

ChargePlan plan_migration(const battery::PackModel& battery,
                          const ultracap::BankModel& bank,
                          const Converter& cap_converter,
                          const ChargePlannerInputs& in) {
  OTEM_REQUIRE(in.window_s >= in.dt, "window shorter than one step");
  const size_t steps = static_cast<size_t>(in.window_s / in.dt);

  auto outcome = [&](double p_bus) {
    ChargePlan plan = simulate_migration(
        battery, bank, cap_converter, in,
        std::vector<double>(steps, p_bus));
    plan.bus_power_w = p_bus;
    return plan;
  };

  // Feasibility at the ceiling first.
  ChargePlan best = outcome(in.max_bus_power_w);
  if (!best.feasible) return best;  // best effort, flagged infeasible

  // Bisect for the lowest constant power that still completes — the
  // minimum-I^2R schedule.
  double lo = 0.0, hi = in.max_bus_power_w;
  for (int it = 0; it < 50; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (outcome(mid).feasible)
      hi = mid;
    else
      lo = mid;
  }
  best = outcome(hi);
  OTEM_ENSURE(best.feasible, "bisection lost feasibility");
  return best;
}

}  // namespace otem::hees
