#include "hees/hybrid_arch.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace otem::hees {

HybridParams HybridParams::for_storages(const battery::PackModel& battery,
                                        const ultracap::BankModel& ultracap,
                                        const Config& cfg) {
  HybridParams p;
  p.battery_converter.nominal_voltage = battery.open_circuit_voltage(100.0);
  // The battery's voltage swing is small and its converter is a
  // high-voltage full-power stage: near-flat ~98.5 % efficiency.
  // Droop mostly matters for the UC branch, whose voltage halves over
  // the usable SoE window (Eq. 8).
  p.battery_converter.eta_max = 0.985;
  p.battery_converter.droop = 0.03;
  p.cap_converter.nominal_voltage = ultracap.params().rated_voltage;
  p.cap_converter.droop = 0.25;

  p.battery_converter = ConverterParams::from_config(
      cfg, "hees.bat_conv.", p.battery_converter);
  p.cap_converter =
      ConverterParams::from_config(cfg, "hees.cap_conv.", p.cap_converter);
  p.max_battery_power_w =
      cfg.get_double("hees.max_battery_power", p.max_battery_power_w);
  OTEM_REQUIRE(p.max_battery_power_w > 0.0,
               "battery power restriction must be positive");
  return p;
}

HybridArchitecture::HybridArchitecture(battery::PackModel battery,
                                       ultracap::BankModel ultracap,
                                       HybridParams params)
    : battery_(std::move(battery)),
      ultracap_(std::move(ultracap)),
      fade_(battery_.params().cell),
      params_(params),
      bat_conv_(params.battery_converter),
      cap_conv_(params.cap_converter) {}

double HybridArchitecture::cap_bus_discharge_limit(double soe_percent,
                                                   double dt) const {
  const double storage_limit = ultracap_.max_discharge_power(soe_percent, dt);
  return cap_conv_.bus_power_for_storage(storage_limit,
                                         ultracap_.voltage(soe_percent));
}

double HybridArchitecture::cap_bus_charge_limit(double soe_percent,
                                                double dt) const {
  const double storage_limit = ultracap_.max_charge_power(soe_percent, dt);
  // Charging: storage receives p_bus * eta, so the bus-side limit is
  // storage_limit / eta.
  const double eta = cap_conv_.efficiency(ultracap_.voltage(soe_percent));
  return storage_limit / eta;
}

ArchStep HybridArchitecture::step(double soc_percent, double soe_percent,
                                  double t_battery_k, double p_bat_bus_w,
                                  double p_cap_bus_w, double dt) const {
  OTEM_REQUIRE(dt > 0.0, "step duration must be positive");
  ArchStep out;

  // --- ultracapacitor branch --------------------------------------------
  const double v_cap = ultracap_.voltage(soe_percent);
  double p_cap_bus = p_cap_bus_w;

  // Clamp the request to what the bank can deliver/absorb this step
  // (energy window between 0 and 100 % SoE plus the power rating). The
  // MPC keeps SoE above the 20 % policy floor by constraint; the plant
  // enforces only physics here.
  if (p_cap_bus > 0.0) {
    const double storage_limit =
        std::clamp(ultracap_.stored_energy_j(soe_percent) / dt, 0.0,
                   ultracap_.params().max_power_w);
    const double bus_limit =
        cap_conv_.bus_power_for_storage(storage_limit, v_cap);
    p_cap_bus = std::min(p_cap_bus, bus_limit);
  } else if (p_cap_bus < 0.0) {
    p_cap_bus = -std::min(-p_cap_bus, cap_bus_charge_limit(soe_percent, dt));
  }

  const double p_cap_storage =
      cap_conv_.storage_power_for_bus(p_cap_bus, v_cap);
  out.soe_next = ultracap_.step_soe(soe_percent, p_cap_storage, dt);
  out.i_cap_a = ultracap_.current_for_power(soe_percent, p_cap_storage);
  out.e_cap_j = p_cap_storage * dt;
  out.e_loss_j += (p_cap_storage - p_cap_bus) * dt;

  // Any clamped-away UC power shifts to the battery branch so the bus
  // still receives the commanded total.
  const double p_bat_bus = p_bat_bus_w + (p_cap_bus_w - p_cap_bus);

  // --- battery branch ------------------------------------------------------
  const double v_bat_oc = battery_.open_circuit_voltage(soc_percent);
  const double p_bat_storage_requested =
      bat_conv_.storage_power_for_bus(p_bat_bus, v_bat_oc);
  double p_bat_storage = p_bat_storage_requested;
  if (std::abs(p_bat_storage) > params_.max_battery_power_w) {
    // An optimiser legitimately rides the C6 boundary; only flag a
    // reliability violation when the request meaningfully exceeds it.
    if (std::abs(p_bat_storage) > 1.005 * params_.max_battery_power_w)
      out.feasible = false;
    p_bat_storage = std::copysign(params_.max_battery_power_w, p_bat_storage);
  }

  const battery::PowerSolve solve =
      battery_.current_for_power(soc_percent, t_battery_k, p_bat_storage);
  out.feasible = out.feasible && solve.feasible;
  const double i_b = solve.current_a;

  // Discharge shortfall, reflected to the bus: what the load asked of
  // the battery branch minus what it actually gets.
  if (p_bat_storage_requested > 0.0) {
    const double delivered_terminal = solve.terminal_voltage * i_b;
    const double delivered_bus =
        bat_conv_.bus_power_for_storage(std::max(delivered_terminal, 0.0),
                                        v_bat_oc);
    out.unmet_bus_w = std::max(0.0, p_bat_bus - delivered_bus);
  }
  const double rb = battery_.internal_resistance(soc_percent, t_battery_k);

  out.i_bat_a = i_b;
  out.soc_next = battery_.step_soc(soc_percent, i_b, dt);
  out.q_bat_w = battery_.heat_generation(soc_percent, t_battery_k, i_b);
  out.e_bat_j = v_bat_oc * i_b * dt;
  out.e_loss_j += i_b * i_b * rb * dt;
  out.e_loss_j += (p_bat_storage - p_bat_bus) * dt;
  out.qloss_percent = fade_.loss_for_step(
      std::max(i_b, 0.0) / battery_.params().parallel, t_battery_k, dt);
  return out;
}

}  // namespace otem::hees
