#include "hees/parallel_arch.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace otem::hees {

ParallelArchitecture::ParallelArchitecture(battery::PackModel battery,
                                           ultracap::BankModel ultracap,
                                           double cap_path_resistance)
    : battery_(std::move(battery)),
      ultracap_(std::move(ultracap)),
      fade_(battery_.params().cell),
      v_ref_(battery_.open_circuit_voltage(100.0)),
      r_c_(cap_path_resistance) {
  OTEM_ENSURE(v_ref_ > 0.0, "pack reference voltage must be positive");
  OTEM_REQUIRE(r_c_ > 0.0, "ultracap path resistance must be positive");
}

double ParallelArchitecture::effective_capacitance() const {
  const double vr = ultracap_.params().rated_voltage;
  return ultracap_.params().capacitance_f * (vr / v_ref_) * (vr / v_ref_);
}

double ParallelArchitecture::cap_bus_voltage(double soe_percent) const {
  return v_ref_ * std::sqrt(std::clamp(soe_percent, 0.0, 100.0) / 100.0);
}

double ParallelArchitecture::equilibrium_soe(double soc_percent) const {
  const double ratio =
      battery_.open_circuit_voltage(soc_percent) / v_ref_;
  return std::clamp(100.0 * ratio * ratio, 0.0, 100.0);
}

ArchStep ParallelArchitecture::step(double soc_percent, double soe_percent,
                                    double t_battery_k, double p_load_w,
                                    double dt) const {
  OTEM_REQUIRE(dt > 0.0, "step duration must be positive");

  ArchStep out;
  out.soc_next = soc_percent;
  out.soe_next = soe_percent;

  // Sub-step sizing from the (R_b + R_c) C_eff relaxation constant.
  const double rb0 = battery_.internal_resistance(soc_percent, t_battery_k);
  const double tau =
      std::max((rb0 + r_c_) * effective_capacitance(), 1e-3);
  const int substeps =
      std::clamp(static_cast<int>(std::ceil(dt / (tau / 5.0))), 1, 200);
  const double h = dt / substeps;

  const double e_cap_capacity = ultracap_.energy_capacity_j();
  double q_heat_accum = 0.0;
  double i_bat_accum = 0.0;
  double i_cap_accum = 0.0;

  double soc = soc_percent;
  double soe = soe_percent;

  for (int k = 0; k < substeps; ++k) {
    const double vb = battery_.open_circuit_voltage(soc);
    const double rb = battery_.internal_resistance(soc, t_battery_k);
    const double vc = cap_bus_voltage(soe);

    // Eqs. (10)-(13) with a resistive ultracap branch:
    //   I_b = (V_b - V_l)/R_b,  I_c = (V_c - V_l)/R_c,
    //   I_b + I_c = I_l = P_l / V_l
    // giving G V_l^2 - S V_l + P = 0 with G = 1/R_b + 1/R_c and
    // S = V_b/R_b + V_c/R_c. The physical operating point is the
    // high-voltage root. A bank at the 100 % ceiling cannot absorb
    // charge: its branch opens and surplus regen goes to the brakes.
    const bool cap_open = soe >= 100.0 && p_load_w < 0.0;
    const double g = 1.0 / rb + (cap_open ? 0.0 : 1.0 / r_c_);
    const double s = vb / rb + (cap_open ? 0.0 : vc / r_c_);
    const double disc = s * s - 4.0 * g * p_load_w;
    double v_l;
    if (disc >= 0.0) {
      v_l = (s + std::sqrt(disc)) / (2.0 * g);
    } else {
      v_l = s / (2.0 * g);  // peak-power clamp
      out.feasible = false;
      // Delivered power at the clamp is s^2/(4g); the rest is unmet.
      out.unmet_bus_w += (p_load_w - s * s / (4.0 * g)) * h / dt;
    }

    const double i_b = (vb - v_l) / rb;
    double i_c = cap_open ? 0.0 : (vc - v_l) / r_c_;
    // A drained bank cannot source current.
    if (soe <= 0.0 && i_c > 0.0) {
      i_c = 0.0;
      out.feasible = false;
    }

    // Stored-energy flow out of the capacitor plates (loss in R_c is
    // external to the storage).
    const double p_cap = vc * i_c;

    // State updates.
    soe = std::clamp(soe - 100.0 * p_cap * h / e_cap_capacity, 0.0, 100.0);
    soc = battery_.step_soc(soc, i_b, h);

    // Bookkeeping.
    out.e_bat_j += vb * i_b * h;
    out.e_cap_j += p_cap * h;
    out.e_loss_j += (i_b * i_b * rb + i_c * i_c * r_c_) * h;
    q_heat_accum += battery_.heat_generation(soc, t_battery_k, i_b) * h;
    out.qloss_percent += fade_.loss_for_step(
        std::max(i_b, 0.0) / battery_.params().parallel, t_battery_k, h);
    i_bat_accum += i_b * h;
    i_cap_accum += i_c * h;
  }

  out.soc_next = soc;
  out.soe_next = soe;
  out.q_bat_w = q_heat_accum / dt;
  out.i_bat_a = i_bat_accum / dt;
  out.i_cap_a = i_cap_accum / dt;
  return out;
}

}  // namespace otem::hees
