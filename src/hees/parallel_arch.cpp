#include "hees/parallel_arch.h"

#include <algorithm>
#include <cmath>

#include "battery/cell_math.h"
#include "common/error.h"

namespace otem::hees {
namespace {

// Loop-invariant parameters of one architecture, gathered once per
// step()/step_lanes() call so the substep kernel below is pure
// arithmetic on doubles.
struct SubstepCtx {
  const battery::CellParams* cell;
  double series;          ///< pack series count
  double strings;         ///< pack parallel string count
  double r_c;             ///< ultracap branch resistance [ohm]
  double v_ref;           ///< pack reference voltage [V]
  double e_cap_capacity;  ///< bank energy capacity [J]
  double cap_as;          ///< pack charge capacity [A s]
};

struct SubstepOut {
  double soc_next;
  double soe_next;
  double rb_next;  ///< pack resistance at soc_next (next substep's rb)
  double i_b;
  double i_c;
  double e_bat_h;
  double e_cap_h;
  double e_loss_h;
  double q_heat_h;
  double qloss_h;
  double unmet_h;
  double infeasible;  ///< 1.0 when clamped or drained, else 0.0
};

// One electro-chemical substep of the permanently-parallel HEES
// circuit, shared by the scalar step() loop and the SoA lane sweep in
// step_lanes(). Branch-free on the value path — every decision is a
// select — so the compiler can vectorize a lane loop around it, while
// the scalar path inlines the exact same expressions in the same
// association order. That sharing is what makes the batched plant
// bit-identical to the scalar oracle (tests/test_plant_batch.cpp).
//
// `rb` must be the pack resistance at (soc, t_battery_k); the kernel
// returns the resistance at soc_next so callers chain substeps without
// recomputing it (the heat term needs it anyway).
//
// kAssumeUnitFade elides the std::pow fallback for the fade exponent —
// a libm call the if-converter cannot mask away, which would otherwise
// keep the lane sweep scalar. Callers may only instantiate it as true
// after checking l3 == 1.0, where pow(x, 1) == x exactly (IEEE 754)
// makes the two instantiations bit-identical.
template <bool kAssumeUnitFade>
inline SubstepOut parallel_substep(const SubstepCtx& x, double arr_r,
                                   double arr_fade, double soc, double soe,
                                   double rb, double t_battery_k,
                                   double p_load_w, double h, double dt) {
  const battery::CellParams& c = *x.cell;
  SubstepOut o;

  // Every parameter a conditional arm touches is loaded into a local
  // up front, and every FP expression is computed unconditionally with
  // the ternaries reduced to pure value selects. GCC's if-converter
  // refuses to speculate loads or divisions that only execute on one
  // side of a branch ("tree could trap"), and one such statement is
  // enough to keep the whole lane sweep scalar.
  const double series = x.series;
  const double strings = x.strings;
  const double r_c = x.r_c;
  const double l1 = c.l1;
  const double cap_ah = c.capacity_ah;

  const double vb = series * battery::cellmath::voc(c, soc);
  const double vc = x.v_ref * std::sqrt(std::clamp(soe, 0.0, 100.0) / 100.0);

  // Eqs. (10)-(13) with a resistive ultracap branch:
  //   I_b = (V_b - V_l)/R_b,  I_c = (V_c - V_l)/R_c,
  //   I_b + I_c = I_l = P_l / V_l
  // giving G V_l^2 - S V_l + P = 0 with G = 1/R_b + 1/R_c and
  // S = V_b/R_b + V_c/R_c. The physical operating point is the
  // high-voltage root. A bank at the 100 % ceiling cannot absorb
  // charge: its branch opens and surplus regen goes to the brakes.
  const bool cap_open = soe >= 100.0 && p_load_w < 0.0;
  const double inv_rc = 1.0 / r_c;
  const double vc_over_rc = vc / r_c;
  const double g = 1.0 / rb + (cap_open ? 0.0 : inv_rc);
  const double s = vb / rb + (cap_open ? 0.0 : vc_over_rc);
  const double disc = s * s - 4.0 * g * p_load_w;
  // disc < 0: peak-power clamp. Delivered power at the clamp is
  // s^2/(4g); the rest is unmet. The max() keeps the untaken sqrt arm
  // NaN-free so the select stays value-safe under vectorization.
  const bool clamped = disc < 0.0;
  const double root = std::sqrt(std::max(disc, 0.0));
  const double v_peak = s / (2.0 * g);
  const double v_root = (s + root) / (2.0 * g);
  const double v_l = clamped ? v_peak : v_root;
  const double unmet_full = (p_load_w - s * s / (4.0 * g)) * h / dt;
  o.unmet_h = clamped ? unmet_full : 0.0;

  const double i_b = (vb - v_l) / rb;
  const double i_c_full = (vc - v_l) / r_c;
  const double i_c_raw = cap_open ? 0.0 : i_c_full;
  // A drained bank cannot source current.
  const bool drained = soe <= 0.0 && i_c_raw > 0.0;
  const double i_c = drained ? 0.0 : i_c_raw;
  o.infeasible = clamped || drained ? 1.0 : 0.0;

  // Stored-energy flow out of the capacitor plates (loss in R_c is
  // external to the storage).
  const double p_cap = vc * i_c;

  // State updates (same expressions as BankModel/PackModel steps).
  o.soe_next =
      std::clamp(soe - 100.0 * p_cap * h / x.e_cap_capacity, 0.0, 100.0);
  o.soc_next = std::clamp(soc + (-100.0 * i_b / x.cap_as) * h, 0.0, 100.0);
  o.rb_next =
      battery::cellmath::r25(c, o.soc_next) * arr_r * series / strings;

  // Bookkeeping.
  o.e_bat_h = vb * i_b * h;
  o.e_cap_h = p_cap * h;
  o.e_loss_h = (i_b * i_b * rb + i_c * i_c * r_c) * h;
  // Heat at the updated SoC (Eq. 4): Joule term plus entropic term.
  const double joule = i_b * i_b * o.rb_next;
  const double entropic = i_b * t_battery_k * c.dvoc_dtemp * series;
  o.q_heat_h = (joule + entropic) * h;
  // Capacity fade (Eq. 5) on the discharging half-cycles. Mirrors
  // CapacityFadeModel::loss_rate_percent_per_s including the
  // pow(x, 1) == x shortcut (exact per IEEE 754) that keeps the lane
  // loop free of libm calls at the default fade exponent.
  const double cell_i = std::max(i_b, 0.0) / strings;
  const double c_rate = cell_i / cap_ah;
  const double powed = kAssumeUnitFade
                           ? c_rate
                           : (c.l3 == 1.0 ? c_rate : std::pow(c_rate, c.l3));
  const double rate_full = l1 * arr_fade * powed;
  const double rate = cell_i <= 0.0 ? 0.0 : rate_full;
  o.qloss_h = rate * h;

  o.i_b = i_b;
  o.i_c = i_c;
  return o;
}

}  // namespace

ParallelArchitecture::ParallelArchitecture(battery::PackModel battery,
                                           ultracap::BankModel ultracap,
                                           double cap_path_resistance)
    : battery_(std::move(battery)),
      ultracap_(std::move(ultracap)),
      fade_(battery_.params().cell),
      v_ref_(battery_.open_circuit_voltage(100.0)),
      r_c_(cap_path_resistance) {
  OTEM_ENSURE(v_ref_ > 0.0, "pack reference voltage must be positive");
  OTEM_REQUIRE(r_c_ > 0.0, "ultracap path resistance must be positive");
  const double vr = ultracap_.params().rated_voltage;
  c_eff_ = ultracap_.params().capacitance_f * (vr / v_ref_) * (vr / v_ref_);
}

double ParallelArchitecture::effective_capacitance() const { return c_eff_; }

double ParallelArchitecture::cap_bus_voltage(double soe_percent) const {
  return v_ref_ * std::sqrt(std::clamp(soe_percent, 0.0, 100.0) / 100.0);
}

double ParallelArchitecture::equilibrium_soe(double soc_percent) const {
  const double ratio =
      battery_.open_circuit_voltage(soc_percent) / v_ref_;
  return std::clamp(100.0 * ratio * ratio, 0.0, 100.0);
}

ArchStep ParallelArchitecture::step(double soc_percent, double soe_percent,
                                    double t_battery_k, double p_load_w,
                                    double dt) const {
  OTEM_REQUIRE(dt > 0.0, "step duration must be positive");
  OTEM_REQUIRE(t_battery_k > 100.0, "battery temperature must be in kelvin");

  const battery::CellParams& c = battery_.params().cell;
  const SubstepCtx x{&c,
                     static_cast<double>(battery_.params().series),
                     static_cast<double>(battery_.params().parallel),
                     r_c_,
                     v_ref_,
                     ultracap_.energy_capacity_j(),
                     battery_.capacity_ah() * 3600.0};
  const double arr_r = battery::cellmath::r_arrhenius(c, t_battery_k);
  const double arr_fade = battery::cellmath::fade_arrhenius(c, t_battery_k);

  // Sub-step sizing from the (R_b + R_c) C_eff relaxation constant.
  double rb =
      battery::cellmath::r25(c, soc_percent) * arr_r * x.series / x.strings;
  const double tau = std::max((rb + r_c_) * effective_capacitance(), 1e-3);
  const int substeps =
      std::clamp(static_cast<int>(std::ceil(dt / (tau / 5.0))), 1, 200);
  const double h = dt / substeps;

  ArchStep out;
  double q_heat_accum = 0.0;
  double i_bat_accum = 0.0;
  double i_cap_accum = 0.0;

  double soc = soc_percent;
  double soe = soe_percent;

  for (int k = 0; k < substeps; ++k) {
    const SubstepOut r = parallel_substep<false>(
        x, arr_r, arr_fade, soc, soe, rb, t_battery_k, p_load_w, h, dt);
    soc = r.soc_next;
    soe = r.soe_next;
    rb = r.rb_next;
    out.e_bat_j += r.e_bat_h;
    out.e_cap_j += r.e_cap_h;
    out.e_loss_j += r.e_loss_h;
    out.unmet_bus_w += r.unmet_h;
    out.qloss_percent += r.qloss_h;
    if (r.infeasible != 0.0) out.feasible = false;
    q_heat_accum += r.q_heat_h;
    i_bat_accum += r.i_b * h;
    i_cap_accum += r.i_c * h;
  }

  out.soc_next = soc;
  out.soe_next = soe;
  out.q_bat_w = q_heat_accum / dt;
  out.i_bat_a = i_bat_accum / dt;
  out.i_cap_a = i_cap_accum / dt;
  return out;
}

void ParallelArchitecture::step_lanes(const double* soc_percent,
                                      const double* soe_percent,
                                      const double* t_battery_k,
                                      const double* p_load_w, double dt,
                                      ArchStep* out, size_t n,
                                      const unsigned char* active) const {
  OTEM_REQUIRE(dt > 0.0, "step duration must be positive");

  const battery::CellParams& c = battery_.params().cell;
  const SubstepCtx x{&c,
                     static_cast<double>(battery_.params().series),
                     static_cast<double>(battery_.params().parallel),
                     r_c_,
                     v_ref_,
                     ultracap_.energy_capacity_j(),
                     battery_.capacity_ah() * 3600.0};
  const double c_eff = c_eff_;
  // A non-unit fade exponent would need std::pow inside the sweep, so
  // that (never-used-in-practice) configuration runs scalar per lane.
  // Lanes that need more than one substep (dt > tau/5) likewise fall
  // back to the scalar step(); at the plant's 1 s step tau is O(100 s)
  // and the paper's l3 is 1, so in practice every lane takes the flat
  // sweep below.
  if (c.l3 != 1.0) {
    for (size_t l = 0; l < n; ++l) {
      if (active && !active[l]) {
        out[l] = ArchStep{};
        continue;
      }
      out[l] = step(soc_percent[l], soe_percent[l], t_battery_k[l],
                    p_load_w[l], dt);
    }
    return;
  }

  constexpr size_t kChunk = 64;
  double soc_n[kChunk], soe_n[kChunk], ib[kChunk], ic[kChunk];
  double e_bat[kChunk], e_cap[kChunk], e_loss[kChunk], unmet[kChunk];
  double qloss[kChunk], q_heat[kChunk], infeasible[kChunk], slow[kChunk];

  for (size_t base = 0; base < n; base += kChunk) {
    const size_t m = std::min(kChunk, n - base);
    const double* __restrict__ soc_in = soc_percent + base;
    const double* __restrict__ soe_in = soe_percent + base;
    const double* __restrict__ t_in = t_battery_k + base;
    const double* __restrict__ p_in = p_load_w + base;

    // Pass 1 — the SIMD sweep. Every lane runs the full single-substep
    // physics unconditionally (parked lanes compute on their stale
    // state and the scatter pass discards those results; fastmath::exp
    // clamps, so stale inputs stay non-trapping), keeping the loop
    // free of data-dependent control flow so it vectorizes.
    for (size_t l = 0; l < m; ++l) {
      const double soc = soc_in[l];
      const double soe = soe_in[l];
      const double t = t_in[l];
      const double p = p_in[l];
      const double arr_r = battery::cellmath::r_arrhenius(c, t);
      const double arr_fade = battery::cellmath::fade_arrhenius(c, t);
      const double rb =
          battery::cellmath::r25(c, soc) * arr_r * x.series / x.strings;
      const double tau = std::max((rb + x.r_c) * c_eff, 1e-3);
      slow[l] = dt <= tau / 5.0 ? 0.0 : 1.0;

      const SubstepOut r = parallel_substep<true>(x, arr_r, arr_fade, soc,
                                                  soe, rb, t, p, dt, dt);
      soc_n[l] = r.soc_next;
      soe_n[l] = r.soe_next;
      ib[l] = r.i_b;
      ic[l] = r.i_c;
      e_bat[l] = r.e_bat_h;
      e_cap[l] = r.e_cap_h;
      e_loss[l] = r.e_loss_h;
      unmet[l] = r.unmet_h;
      qloss[l] = r.qloss_h;
      q_heat[l] = r.q_heat_h;
      infeasible[l] = r.infeasible;
    }

    // Pass 2 — scalar scatter into the AoS ArchStep outputs, mirroring
    // the scalar loop's accumulate-from-zero order so every field is
    // bit-identical to step() at one substep.
    for (size_t l = 0; l < m; ++l) {
      const size_t lane = base + l;
      if (active && !active[lane]) {
        out[lane] = ArchStep{};
        continue;
      }
      if (slow[l] != 0.0) {
        out[lane] = step(soc_in[l], soe_in[l], t_in[l], p_in[l], dt);
        continue;
      }
      OTEM_REQUIRE(t_in[l] > 100.0, "battery temperature must be in kelvin");
      ArchStep& o = out[lane];
      o = ArchStep{};
      o.soc_next = soc_n[l];
      o.soe_next = soe_n[l];
      o.e_bat_j += e_bat[l];
      o.e_cap_j += e_cap[l];
      o.e_loss_j += e_loss[l];
      o.unmet_bus_w += unmet[l];
      o.qloss_percent += qloss[l];
      o.feasible = infeasible[l] == 0.0;
      o.q_bat_w = (0.0 + q_heat[l]) / dt;
      o.i_bat_a = (0.0 + ib[l] * dt) / dt;
      o.i_cap_a = (0.0 + ic[l] * dt) / dt;
    }
  }
}

}  // namespace otem::hees
