// charge_planner.h — energy-migration planning (battery -> ultracap).
//
// The hybrid architecture can migrate charge between storages [14];
// OTEM does it implicitly inside the MPC, but charging the bank during
// a known idle window (pre-trip conditioning, a charging stop) is a
// planning problem in its own right: WHEN and HOW HARD to push so the
// target SoE is reached with minimum battery loss.
//
// In this model the converter loss depends only on the bank voltage
// (state), not the rate, so the schedulable loss is the battery's
// I^2 R — strictly convex in power. The minimum-loss plan is therefore
// the LOWEST CONSTANT battery power that completes in the window
// (Jensen: any power wobble adds loss), which the planner computes by
// bisection on the constant bus power, simulating the voltage-dependent
// converter forward.
#pragma once

#include <vector>

#include "battery/battery_model.h"
#include "hees/converter.h"
#include "ultracap/ultracap_model.h"

namespace otem::hees {

struct ChargePlan {
  /// Constant bus-side charging power [W] (positive number; the bank
  /// RECEIVES it through the converter).
  double bus_power_w = 0.0;
  /// Steps actually needed (<= window).
  size_t steps = 0;
  /// Predicted outcome.
  double final_soe_percent = 0.0;
  double battery_energy_j = 0.0;   ///< chemistry energy drawn
  double battery_loss_j = 0.0;     ///< I^2 R inside the pack
  double converter_loss_j = 0.0;   ///< lost across the DC/DC stage
  bool feasible = false;           ///< target reachable within limits
};

struct ChargePlannerInputs {
  double soc_percent = 90.0;     ///< battery state (held ~constant)
  double t_battery_k = 298.15;
  double soe_start_percent = 30.0;
  double soe_target_percent = 90.0;
  double window_s = 120.0;
  double dt = 1.0;
  /// Bus-power ceiling for the migration [W] (battery electronics).
  double max_bus_power_w = 40000.0;
};

/// Plan the minimum-loss constant-power migration. Infeasible targets
/// return the best-effort plan at the power ceiling with
/// `feasible == false`.
ChargePlan plan_migration(const battery::PackModel& battery,
                          const ultracap::BankModel& bank,
                          const Converter& cap_converter,
                          const ChargePlannerInputs& in);

/// Simulate an arbitrary bus-power schedule (same conventions) and
/// report the outcome — used to compare plans.
ChargePlan simulate_migration(const battery::PackModel& battery,
                              const ultracap::BankModel& bank,
                              const Converter& cap_converter,
                              const ChargePlannerInputs& in,
                              const std::vector<double>& bus_power_w);

}  // namespace otem::hees
