#include "hees/dual_arch.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace otem::hees {

const char* to_string(DualMode mode) {
  switch (mode) {
    case DualMode::kBatteryOnly:
      return "battery_only";
    case DualMode::kUltracapOnly:
      return "ultracap_only";
    case DualMode::kParallel:
      return "parallel";
    case DualMode::kRecharge:
      return "recharge";
  }
  return "?";
}

DualArchitecture::DualArchitecture(battery::PackModel battery,
                                   ultracap::BankModel ultracap)
    : parallel_(std::move(battery), std::move(ultracap)),
      fade_(parallel_.battery().params().cell) {}

ArchStep DualArchitecture::step(double soc_percent, double soe_percent,
                                double t_battery_k, double p_load_w,
                                DualMode mode, double dt) const {
  OTEM_REQUIRE(dt > 0.0, "step duration must be positive");
  switch (mode) {
    case DualMode::kBatteryOnly:
      return battery_only_step(soc_percent, soe_percent, t_battery_k,
                               p_load_w, dt);
    case DualMode::kUltracapOnly:
      return ultracap_only_step(soc_percent, soe_percent, t_battery_k,
                                p_load_w, dt);
    case DualMode::kParallel:
      return parallel_.step(soc_percent, soe_percent, t_battery_k, p_load_w,
                            dt);
    case DualMode::kRecharge:
      return recharge_step(soc_percent, soe_percent, t_battery_k, p_load_w,
                           dt);
  }
  throw SimError("unknown dual architecture mode");
}

void DualArchitecture::set_recharge_power_w(double p_w) {
  OTEM_REQUIRE(p_w >= 0.0, "recharge power must be non-negative");
  recharge_power_w_ = p_w;
}

ArchStep DualArchitecture::recharge_step(double soc, double soe, double tb,
                                         double p_load, double dt) const {
  const ultracap::BankModel& cap = parallel_.ultracap();
  // Current-limited charge into the bank, capped by its headroom.
  const double p_charge =
      std::min(recharge_power_w_, cap.max_charge_power(soe, dt));
  ArchStep out = battery_only_step(soc, soe, tb, p_load + p_charge, dt);
  out.soe_next = cap.step_soe(soe, -p_charge, dt);
  // Report the charge current where the bank voltage is defined; a
  // fully drained bank takes a (modelled) constant-power precharge.
  out.i_cap_a = soe > 0.01 ? cap.current_for_power(soe, -p_charge) : 0.0;
  out.e_cap_j = -p_charge * dt;
  return out;
}

ArchStep DualArchitecture::battery_only_step(double soc, double soe,
                                             double tb, double p_load,
                                             double dt) const {
  const battery::PackModel& bat = parallel_.battery();
  ArchStep out;
  const battery::PowerSolve solve = bat.current_for_power(soc, tb, p_load);
  out.feasible = solve.feasible;
  const double i_b = solve.current_a;
  const double vb = bat.open_circuit_voltage(soc);
  const double rb = bat.internal_resistance(soc, tb);

  out.i_bat_a = i_b;
  out.soc_next = bat.step_soc(soc, i_b, dt);
  out.soe_next = soe;  // UC floats
  out.q_bat_w = bat.heat_generation(soc, tb, i_b);
  out.e_bat_j = vb * i_b * dt;
  out.e_loss_j = i_b * i_b * rb * dt;
  out.qloss_percent = fade_.loss_for_step(
      std::max(i_b, 0.0) / bat.params().parallel, tb, dt);
  return out;
}

ArchStep DualArchitecture::ultracap_only_step(double soc, double soe,
                                              double tb, double p_load,
                                              double dt) const {
  const ultracap::BankModel& cap = parallel_.ultracap();
  const double r_c = parallel_.cap_path_resistance();
  ArchStep out;

  // Serve the load through the resistive bank path:
  // (V_c - R_c I) I = P. The storage then sees V_c I = P + I^2 R_c.
  const double v_c = parallel_.cap_bus_voltage(soe);
  double p_bus = p_load;

  // Peak-power limit of the resistive path.
  const double peak = v_c * v_c / (4.0 * r_c);
  if (p_bus > peak) {
    p_bus = peak;
    out.feasible = false;
  }

  double i_c = 0.0;
  double p_storage = 0.0;
  if (v_c > 1e-6) {
    const double disc = v_c * v_c - 4.0 * r_c * p_bus;
    i_c = (v_c - std::sqrt(std::max(disc, 0.0))) / (2.0 * r_c);
    p_storage = v_c * i_c;
  } else if (p_bus > 0.0) {
    out.feasible = false;  // drained bank cannot hold the bus
  }

  // Energy-window clamps on the storage side.
  if (p_storage > 0.0) {
    const double deliverable = cap.max_discharge_power(soe, dt);
    if (p_storage > deliverable) {
      p_storage = deliverable;
      i_c = v_c > 1e-6 ? p_storage / v_c : 0.0;
      p_bus = p_storage - i_c * i_c * r_c;
      out.feasible = false;
    }
  } else if (p_storage < 0.0) {
    const double acceptable = cap.max_charge_power(soe, dt);
    if (-p_storage > acceptable) {
      p_storage = -acceptable;  // brakes take the rest
      i_c = v_c > 1e-6 ? p_storage / v_c : 0.0;
      p_bus = p_storage - i_c * i_c * r_c;
    }
  }

  out.soe_next = cap.step_soe(soe, p_storage, dt);
  out.i_cap_a = i_c;
  out.e_cap_j = p_storage * dt;
  out.e_loss_j += i_c * i_c * r_c * dt;

  // Shortfall falls back to the battery (both switches momentarily
  // closed in a real system; modelled as direct battery supply).
  const double shortfall = p_load > 0.0 ? p_load - p_bus : 0.0;
  if (shortfall > 1e-9) {
    const ArchStep bat_step =
        battery_only_step(soc, soe, tb, shortfall, dt);
    out.i_bat_a = bat_step.i_bat_a;
    out.soc_next = bat_step.soc_next;
    out.q_bat_w = bat_step.q_bat_w;
    out.e_bat_j = bat_step.e_bat_j;
    out.e_loss_j += bat_step.e_loss_j;
    out.qloss_percent = bat_step.qloss_percent;
    out.feasible = out.feasible && bat_step.feasible;
  } else {
    out.soc_next = soc;
  }
  return out;
}

void DualArchitecture::step_lanes(const double* soc_percent,
                                  const double* soe_percent,
                                  const double* t_battery_k,
                                  const double* p_load_w,
                                  const DualMode* mode, double dt,
                                  ArchStep* out, size_t n,
                                  const unsigned char* active) const {
  for (size_t l = 0; l < n; ++l) {
    if (active && !active[l]) {
      out[l] = ArchStep{};
      continue;
    }
    out[l] = step(soc_percent[l], soe_percent[l], t_battery_k[l],
                  p_load_w[l], mode[l], dt);
  }
}

}  // namespace otem::hees
