#include "thermal/pack_thermal.h"

#include <algorithm>

#include "common/error.h"

namespace otem::thermal {

namespace {
CoolingParams scale_to_segment(CoolingParams lumped, int segments) {
  // Capacities and the battery<->coolant coupling split across
  // segments; the FLOW heat-capacity rate is the same stream passing
  // every segment, so it is NOT divided.
  lumped.battery_heat_capacity /= segments;
  lumped.coolant_heat_capacity /= segments;
  lumped.heat_transfer_w_k /= segments;
  return lumped;
}
}  // namespace

PackThermalModel::PackThermalModel(CoolingParams lumped, int segments)
    : lumped_(lumped),
      segments_(segments),
      segment_system_(scale_to_segment(lumped, segments)) {
  OTEM_REQUIRE(segments >= 1, "pack thermal model needs >= 1 segment");
}

PackThermalModel::State PackThermalModel::uniform(double temp_k) const {
  State s;
  s.t_cell_k.assign(segments_, temp_k);
  s.t_coolant_k.assign(segments_, temp_k);
  return s;
}

PackThermalModel::State PackThermalModel::step(const State& s,
                                               double q_total_w,
                                               double t_inlet_k,
                                               double dt) const {
  return step_distributed(
      s, std::vector<double>(segments_, q_total_w / segments_), t_inlet_k,
      dt);
}

PackThermalModel::State PackThermalModel::step_distributed(
    const State& s, const std::vector<double>& q_w, double t_inlet_k,
    double dt) const {
  OTEM_REQUIRE(static_cast<int>(s.t_cell_k.size()) == segments_ &&
                   static_cast<int>(s.t_coolant_k.size()) == segments_,
               "pack thermal state size mismatch");
  OTEM_REQUIRE(static_cast<int>(q_w.size()) == segments_,
               "per-segment heat size mismatch");

  State next;
  next.t_cell_k.resize(segments_);
  next.t_coolant_k.resize(segments_);

  // Sweep in flow order: each segment sees the (time-midpoint) coolant
  // temperature of its upstream neighbour as its inlet, which upwinds
  // the advection implicitly. The affine coefficients depend only on
  // params and dt, so hoist them out of the segment loop.
  const StepMatrix m = segment_system_.step_matrix(dt);
  double inlet_mid = t_inlet_k;
  for (int i = 0; i < segments_; ++i) {
    double tb = s.t_cell_k[i];
    double tc = s.t_coolant_k[i];
    apply_step(m, tb, tc, q_w[i], inlet_mid);
    next.t_cell_k[i] = tb;
    next.t_coolant_k[i] = tc;
    inlet_mid = 0.5 * (s.t_coolant_k[i] + tc);
  }
  return next;
}

double PackThermalModel::hottest_cell(const State& s) const {
  return *std::max_element(s.t_cell_k.begin(), s.t_cell_k.end());
}

double PackThermalModel::mean_cell(const State& s) const {
  double sum = 0.0;
  for (double t : s.t_cell_k) sum += t;
  return sum / static_cast<double>(segments_);
}

double PackThermalModel::outlet(const State& s) const {
  return s.t_coolant_k.back();
}

double PackThermalModel::hotspot_margin(const State& s) const {
  return hottest_cell(s) - mean_cell(s);
}

PackThermalModel::State PackThermalModel::equilibrium(
    double q_total_w, double t_inlet_k) const {
  // Steady state: the stream gains q_seg at each segment,
  //   T_c,i = T_c,i-1 + q_seg / Cdot,
  // and each cell rides q_seg / h_seg above its coolant.
  const double q_seg = q_total_w / segments_;
  const double h_seg = lumped_.heat_transfer_w_k / segments_;
  State s;
  s.t_cell_k.resize(segments_);
  s.t_coolant_k.resize(segments_);
  double tc = t_inlet_k;
  for (int i = 0; i < segments_; ++i) {
    tc += q_seg / lumped_.flow_heat_capacity_rate;
    s.t_coolant_k[i] = tc;
    s.t_cell_k[i] = tc + q_seg / h_seg;
  }
  return s;
}

}  // namespace otem::thermal
