// pack_thermal.h — cell-resolved battery pack thermal model.
//
// The main loop lumps the whole pack into one battery and one coolant
// temperature (cooling_system.h, the paper's Eqs. 14-15). Physically,
// the coolant HEATS UP as it flows through the pack (paper Fig. 5), so
// cells near the outlet run hotter than the lumped average — the cell
// temperature distribution [25] studies. This model resolves the pack
// into segments along the flow path:
//
//   (C_b/M) dT_b,i/dt = (h/M)(T_c,i - T_b,i) + Q_i
//   (C_c/M) dT_c,i/dt = (h/M)(T_b,i - T_c,i) + Cdot (T_c,i-1 - T_c,i)
//
// with T_c,0 = T_inlet. Summing the segment equations with uniform
// temperatures recovers the lumped model exactly, which the tests
// verify; each segment is integrated with the same trapezoidal scheme
// (a scaled CoolingSystem), swept in flow order so the advection term
// is implicitly upwinded.
//
// Use it to quantify the hot-spot margin the lumped C1 threshold needs
// (bench/ablation_hotspot) or to study inlet-position effects.
#pragma once

#include <vector>

#include "thermal/cooling_system.h"

namespace otem::thermal {

class PackThermalModel {
 public:
  /// `segments` cells-groups along the coolant path; params are the
  /// LUMPED pack values (heat capacities of the whole pack), divided
  /// internally.
  PackThermalModel(CoolingParams lumped, int segments);

  int segments() const { return segments_; }
  const CoolingParams& lumped_params() const { return lumped_; }

  struct State {
    std::vector<double> t_cell_k;     ///< per segment
    std::vector<double> t_coolant_k;  ///< per segment (in-segment coolant)
  };

  /// All segments at one temperature.
  State uniform(double temp_k) const;

  /// Advance by dt under TOTAL pack heat q_total [W] (distributed
  /// uniformly across segments unless per-segment heat is given) and
  /// inlet temperature t_inlet [K].
  State step(const State& s, double q_total_w, double t_inlet_k,
             double dt) const;

  /// Per-segment heat variant (size must equal segments()).
  State step_distributed(const State& s, const std::vector<double>& q_w,
                         double t_inlet_k, double dt) const;

  // --- summaries ---------------------------------------------------------
  double hottest_cell(const State& s) const;
  double mean_cell(const State& s) const;
  /// Coolant temperature leaving the pack (last segment).
  double outlet(const State& s) const;
  /// Hot-spot margin: hottest minus mean cell temperature [K].
  double hotspot_margin(const State& s) const;

  /// Steady-state distribution under constant conditions.
  State equilibrium(double q_total_w, double t_inlet_k) const;

 private:
  CoolingParams lumped_;
  int segments_;
  CoolingSystem segment_system_;  ///< lumped params scaled to one segment
};

}  // namespace otem::thermal
