// cooling_system.h — active battery cooling system model
// (paper Section II-D, Eqs. 14-17).
//
// Two lumped thermal states: battery pack temperature T_b and in-pack
// coolant temperature T_c. The controller's thermal actuator is the
// coolant INLET temperature T_i — lowering T_i below the outlet
// temperature costs cooler power P_c = Cdot_c / eta_c * (T_o - T_i)
// (Eq. 16). The pump runs at fixed flow, so its power is a constant.
//
//   C_b dT_b/dt = h_cb (T_c - T_b) + Q_b              (Eq. 14)
//   C_c dT_c/dt = h_bc (T_b - T_c) + Cdot_c (T_i - T_c)  (Eq. 15)
//
// Discretisation follows the paper's Eq. 17 exactly: trapezoidal
// (Crank-Nicolson) in the coupling terms, explicit in Q_b. Because the
// ODE right-hand side is LINEAR in (T_b, T_c, T_i, Q_b), the discrete
// update is an affine map
//   [T_b+, T_c+]^T = M [T_b, T_c]^T + b_i T_i + b_q Q_b
// whose coefficients depend only on the parameters and dt. The
// StepMatrix struct exposes those coefficients so the MPC adjoint can
// backpropagate through the thermal dynamics exactly.
//
// The loop passes an ambient radiator BEFORE the cooler: passively, the
// inlet relaxes part-way to ambient with effectiveness eps,
//   T_i,passive = T_o - eps (T_o - T_ambient),
// and the active cooler pulls further below that at electric cost
//   T_i = T_i,passive - P_c * eta_c / Cdot_c      (inverse of Eq. 16).
// Architectures WITHOUT an active cooler (Parallel [15], Dual [16]) use
// the same loop with P_c = 0 and no pump cost — every methodology gets
// an identical passive path to ambient, required for a fair Fig. 8/9
// comparison, while only cooling-equipped ones can pay energy to cool
// below it.
#pragma once

#include <cstddef>

#include "common/config.h"

namespace otem::thermal {

struct CoolingParams {
  /// Battery pack heat capacity C_b [J/K] (sum over cells; set from the
  /// battery pack by callers).
  double battery_heat_capacity = 96000.0;

  /// Coolant (in-pack) heat capacity C_c [J/K].
  double coolant_heat_capacity = 17500.0;

  /// Battery<->coolant heat transfer coefficient h_cb = h_bc [W/K].
  /// Cold-plate coupling: at 600 W/K a 3 kW pack heat load rides 5 K
  /// above the coolant, so the cooler genuinely controls the cells.
  double heat_transfer_w_k = 600.0;

  /// Coolant flow heat-capacity rate Cdot_c = m_dot * c_p [W/K].
  double flow_heat_capacity_rate = 700.0;

  /// Cooler efficiency eta_c (Eq. 16). The paper models it as an
  /// EFFICIENCY (< 1, heat-exchange losses between coolant, air and a
  /// secondary loop), not a refrigeration COP — so cooling is
  /// genuinely expensive, which is what makes the Fig. 9 trade-off
  /// interesting.
  double cooler_efficiency = 0.75;

  /// Cooler electric power cap P_c_max [W] — paper constraint C3.
  /// Sized so the cooler can hold the pack near its optimum even under
  /// a sustained aggressive cycle (at eta_c = 0.75 this cap moves up to
  /// ~11 kW of heat).
  double max_cooler_power_w = 15000.0;

  /// Lowest achievable inlet temperature [K] (refrigerant limit).
  double min_inlet_temp_k = 273.15;

  /// Passive ambient-radiator effectiveness eps in [0, 1): fraction of
  /// (T_o - T_ambient) shed without spending cooler power. The paper's
  /// pack is "completely isolated from outside"; the small default
  /// models parasitic losses of the plumbing only, so an unmanaged pack
  /// heats far above ambient on aggressive cycles (the paper's Fig. 1
  /// premise) and thermal management is genuinely load-bearing.
  double passive_effectiveness = 0.08;

  /// Constant pump electric power [W] (fixed coolant flow).
  double pump_power_w = 120.0;

  /// Safety band for T_b [K] — paper constraint C1. The upper bound is
  /// the "safe threshold" of Figs. 1 and 6.
  double min_battery_temp_k = 273.15;
  double max_battery_temp_k = 313.15;  // 40 C

  /// Load overrides with prefix "thermal." from cfg.
  static CoolingParams from_config(const Config& cfg);
};

/// The two thermal states.
struct ThermalState {
  double t_battery_k = 298.15;
  double t_coolant_k = 298.15;
};

/// Affine one-step update coefficients (see header comment).
struct StepMatrix {
  // [tb+; tc+] = m [tb; tc] + bi * t_inlet + bq * q_bat
  double m00 = 0, m01 = 0, m10 = 0, m11 = 0;
  double bi0 = 0, bi1 = 0;
  double bq0 = 0, bq1 = 0;
};

/// One affine thermal update in place. This is the single source of the
/// step arithmetic: CoolingSystem::step, PackThermalModel's segment
/// sweep and the lane-batched step_lanes all call it, so the scalar and
/// batched paths produce bit-identical doubles by construction.
inline void apply_step(const StepMatrix& m, double& t_battery_k,
                       double& t_coolant_k, double q_bat_w,
                       double t_inlet_k) {
  const double tb = m.m00 * t_battery_k + m.m01 * t_coolant_k +
                    m.bi0 * t_inlet_k + m.bq0 * q_bat_w;
  const double tc = m.m10 * t_battery_k + m.m11 * t_coolant_k +
                    m.bi1 * t_inlet_k + m.bq1 * q_bat_w;
  t_battery_k = tb;
  t_coolant_k = tc;
}

class CoolingSystem {
 public:
  explicit CoolingSystem(CoolingParams params);

  const CoolingParams& params() const { return params_; }

  /// Exact trapezoidal coefficients for step size dt (Eq. 17).
  StepMatrix step_matrix(double dt) const;

  /// Advance the thermal state by dt under battery heat q_bat [W] and
  /// inlet temperature t_inlet [K].
  ThermalState step(const ThermalState& s, double q_bat_w, double t_inlet_k,
                    double dt) const;

  /// Batched variant over n lanes of contiguous state arrays, updated in
  /// place. The caller hoists the StepMatrix (it depends only on params
  /// and dt), which is also what makes the loop a pure affine sweep the
  /// compiler can vectorize. Per lane this is apply_step(), so results
  /// are bit-identical to step().
  static void step_lanes(const StepMatrix& m, double* t_battery_k,
                         double* t_coolant_k, const double* q_bat_w,
                         const double* t_inlet_k, size_t n);

  /// Passive inlet temperature (cooler off): the ambient radiator sheds
  /// eps of the outlet-to-ambient difference.
  double passive_inlet(double t_coolant_k, double t_ambient_k) const;

  /// Batched passive_inlet over n lanes (bit-identical per lane).
  void passive_inlet_lanes(const double* t_coolant_k,
                           const double* t_ambient_k, double* t_inlet_k,
                           size_t n) const;

  /// Inlet temperature achieved when the cooler additionally spends
  /// electric power p_c [W] (Eq. 16 inverted), clamped to the
  /// refrigerant floor.
  double inlet_for_power(double t_coolant_k, double t_ambient_k,
                         double p_c_w) const;

  /// Cooler electric power [W] required to reach t_inlet from the
  /// passive inlet (Eq. 16, T_o = T_c). Zero when the passive path
  /// already reaches it.
  double cooler_power(double t_coolant_k, double t_ambient_k,
                      double t_inlet_k) const;

  /// Lowest inlet temperature reachable under the power cap C3.
  double min_feasible_inlet(double t_coolant_k, double t_ambient_k) const;

  /// Kelvin of inlet pull-down bought per watt of cooler power:
  /// eta_c / Cdot_c. Exposed for the MPC's analytic gradients.
  double pulldown_per_watt() const;

  /// Continuous-time derivatives (Eqs. 14-15) — used by the RK4
  /// reference integrator in tests.
  void derivatives(const ThermalState& s, double q_bat_w, double t_inlet_k,
                   double& dtb_dt, double& dtc_dt) const;

  /// Classic RK4 step — reference integrator to validate the trapezoidal
  /// scheme's accuracy in tests.
  ThermalState step_rk4(const ThermalState& s, double q_bat_w,
                        double t_inlet_k, double dt) const;

  /// Steady-state temperatures under constant heat and inlet temperature
  /// (dT/dt = 0 in Eqs. 14-15) — used by equilibrium property tests.
  ThermalState equilibrium(double q_bat_w, double t_inlet_k) const;

 private:
  CoolingParams params_;
};

}  // namespace otem::thermal
