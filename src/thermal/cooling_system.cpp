#include "thermal/cooling_system.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace otem::thermal {

CoolingParams CoolingParams::from_config(const Config& cfg) {
  CoolingParams p;
  p.battery_heat_capacity =
      cfg.get_double("thermal.battery_heat_capacity", p.battery_heat_capacity);
  p.coolant_heat_capacity =
      cfg.get_double("thermal.coolant_heat_capacity", p.coolant_heat_capacity);
  p.heat_transfer_w_k =
      cfg.get_double("thermal.heat_transfer", p.heat_transfer_w_k);
  p.flow_heat_capacity_rate =
      cfg.get_double("thermal.flow_rate", p.flow_heat_capacity_rate);
  p.cooler_efficiency =
      cfg.get_double("thermal.cooler_efficiency", p.cooler_efficiency);
  p.max_cooler_power_w =
      cfg.get_double("thermal.max_cooler_power", p.max_cooler_power_w);
  p.min_inlet_temp_k =
      cfg.get_double("thermal.min_inlet_temp", p.min_inlet_temp_k);
  p.passive_effectiveness =
      cfg.get_double("thermal.passive_effectiveness", p.passive_effectiveness);
  OTEM_REQUIRE(p.passive_effectiveness >= 0.0 && p.passive_effectiveness < 1.0,
               "passive effectiveness must be in [0, 1)");
  p.pump_power_w = cfg.get_double("thermal.pump_power", p.pump_power_w);
  p.min_battery_temp_k =
      cfg.get_double("thermal.min_battery_temp", p.min_battery_temp_k);
  p.max_battery_temp_k =
      cfg.get_double("thermal.max_battery_temp", p.max_battery_temp_k);

  OTEM_REQUIRE(p.battery_heat_capacity > 0.0 && p.coolant_heat_capacity > 0.0,
               "thermal heat capacities must be positive");
  OTEM_REQUIRE(p.heat_transfer_w_k > 0.0, "heat transfer must be positive");
  OTEM_REQUIRE(p.flow_heat_capacity_rate > 0.0,
               "coolant flow rate must be positive");
  OTEM_REQUIRE(p.cooler_efficiency > 0.0,
               "cooler efficiency must be positive");
  OTEM_REQUIRE(p.min_battery_temp_k < p.max_battery_temp_k,
               "battery temperature band is empty");
  return p;
}

CoolingSystem::CoolingSystem(CoolingParams params) : params_(params) {}

StepMatrix CoolingSystem::step_matrix(double dt) const {
  OTEM_REQUIRE(dt > 0.0, "thermal step size must be positive");
  const double cb = params_.battery_heat_capacity;
  const double cc = params_.coolant_heat_capacity;
  const double a = params_.heat_transfer_w_k * dt / 2.0;
  const double f = params_.flow_heat_capacity_rate * dt;

  // Trapezoidal (Eq. 17) system A [tb+; tc+] = B [tb; tc] + [dt;0] q
  //                                           + [0; f] t_inlet
  const double a00 = cb + a;
  const double a01 = -a;
  const double a10 = -a;
  const double a11 = cc + a + f / 2.0;
  const double det = a00 * a11 - a01 * a10;
  OTEM_ENSURE(det > 0.0, "thermal step matrix is singular");

  // A^{-1} = 1/det [[a11, -a01], [-a10, a00]]
  const double i00 = a11 / det;
  const double i01 = -a01 / det;
  const double i10 = -a10 / det;
  const double i11 = a00 / det;

  const double b00 = cb - a;
  const double b01 = a;
  const double b10 = a;
  const double b11 = cc - a - f / 2.0;

  StepMatrix m;
  m.m00 = i00 * b00 + i01 * b10;
  m.m01 = i00 * b01 + i01 * b11;
  m.m10 = i10 * b00 + i11 * b10;
  m.m11 = i10 * b01 + i11 * b11;
  m.bq0 = i00 * dt;
  m.bq1 = i10 * dt;
  m.bi0 = i01 * f;
  m.bi1 = i11 * f;
  return m;
}

ThermalState CoolingSystem::step(const ThermalState& s, double q_bat_w,
                                 double t_inlet_k, double dt) const {
  const StepMatrix m = step_matrix(dt);
  ThermalState out = s;
  apply_step(m, out.t_battery_k, out.t_coolant_k, q_bat_w, t_inlet_k);
  return out;
}

void CoolingSystem::step_lanes(const StepMatrix& m, double* t_battery_k,
                               double* t_coolant_k, const double* q_bat_w,
                               const double* t_inlet_k, size_t n) {
  double* __restrict__ tb = t_battery_k;
  double* __restrict__ tc = t_coolant_k;
  const double* __restrict__ q = q_bat_w;
  const double* __restrict__ ti = t_inlet_k;
  for (size_t l = 0; l < n; ++l) {
    apply_step(m, tb[l], tc[l], q[l], ti[l]);
  }
}

double CoolingSystem::passive_inlet(double t_coolant_k,
                                    double t_ambient_k) const {
  return t_coolant_k -
         params_.passive_effectiveness * (t_coolant_k - t_ambient_k);
}

void CoolingSystem::passive_inlet_lanes(const double* t_coolant_k,
                                        const double* t_ambient_k,
                                        double* t_inlet_k, size_t n) const {
  const double eps = params_.passive_effectiveness;
  const double* __restrict__ tc = t_coolant_k;
  const double* __restrict__ amb = t_ambient_k;
  double* __restrict__ ti = t_inlet_k;
  for (size_t l = 0; l < n; ++l) {
    ti[l] = tc[l] - eps * (tc[l] - amb[l]);
  }
}

double CoolingSystem::inlet_for_power(double t_coolant_k, double t_ambient_k,
                                      double p_c_w) const {
  OTEM_REQUIRE(p_c_w >= 0.0, "cooler power must be non-negative");
  const double ti = passive_inlet(t_coolant_k, t_ambient_k) -
                    p_c_w * pulldown_per_watt();
  return std::max(params_.min_inlet_temp_k, ti);
}

double CoolingSystem::cooler_power(double t_coolant_k, double t_ambient_k,
                                   double t_inlet_k) const {
  // Eq. 16 with T_o at the radiator exit; the cooler can only cool
  // (C2), so an inlet above the passive level costs nothing.
  const double pull = passive_inlet(t_coolant_k, t_ambient_k) - t_inlet_k;
  if (pull <= 0.0) return 0.0;
  return pull / pulldown_per_watt();
}

double CoolingSystem::min_feasible_inlet(double t_coolant_k,
                                         double t_ambient_k) const {
  return inlet_for_power(t_coolant_k, t_ambient_k,
                         params_.max_cooler_power_w);
}

double CoolingSystem::pulldown_per_watt() const {
  return params_.cooler_efficiency / params_.flow_heat_capacity_rate;
}

void CoolingSystem::derivatives(const ThermalState& s, double q_bat_w,
                                double t_inlet_k, double& dtb_dt,
                                double& dtc_dt) const {
  const double h = params_.heat_transfer_w_k;
  dtb_dt = (h * (s.t_coolant_k - s.t_battery_k) + q_bat_w) /
           params_.battery_heat_capacity;
  dtc_dt = (h * (s.t_battery_k - s.t_coolant_k) +
            params_.flow_heat_capacity_rate * (t_inlet_k - s.t_coolant_k)) /
           params_.coolant_heat_capacity;
}

ThermalState CoolingSystem::step_rk4(const ThermalState& s, double q_bat_w,
                                     double t_inlet_k, double dt) const {
  auto deriv = [&](const ThermalState& st) {
    double db = 0, dc = 0;
    derivatives(st, q_bat_w, t_inlet_k, db, dc);
    return ThermalState{db, dc};
  };
  const ThermalState k1 = deriv(s);
  const ThermalState s2{s.t_battery_k + 0.5 * dt * k1.t_battery_k,
                        s.t_coolant_k + 0.5 * dt * k1.t_coolant_k};
  const ThermalState k2 = deriv(s2);
  const ThermalState s3{s.t_battery_k + 0.5 * dt * k2.t_battery_k,
                        s.t_coolant_k + 0.5 * dt * k2.t_coolant_k};
  const ThermalState k3 = deriv(s3);
  const ThermalState s4{s.t_battery_k + dt * k3.t_battery_k,
                        s.t_coolant_k + dt * k3.t_coolant_k};
  const ThermalState k4 = deriv(s4);
  return ThermalState{
      s.t_battery_k + dt / 6.0 *
                          (k1.t_battery_k + 2 * k2.t_battery_k +
                           2 * k3.t_battery_k + k4.t_battery_k),
      s.t_coolant_k + dt / 6.0 *
                          (k1.t_coolant_k + 2 * k2.t_coolant_k +
                           2 * k3.t_coolant_k + k4.t_coolant_k)};
}

ThermalState CoolingSystem::equilibrium(double q_bat_w,
                                        double t_inlet_k) const {
  // From Eq. 15 at steady state: F (Ti - Tc) + h (Tb - Tc) = 0 and from
  // Eq. 14: h (Tc - Tb) + Q = 0, so Tb - Tc = Q / h and Tc = Ti + Q / F.
  const double tc = t_inlet_k + q_bat_w / params_.flow_heat_capacity_rate;
  return ThermalState{tc + q_bat_w / params_.heat_transfer_w_k, tc};
}

}  // namespace otem::thermal
