#include "obs/jsonl.h"

#include "common/error.h"

namespace otem::obs {

JsonlWriter::JsonlWriter(const std::string& path)
    : path_(path), out_(path) {
  OTEM_REQUIRE(out_.good(), "cannot open JSONL output: " + path);
}

void JsonlWriter::write(const Json& event) {
  out_ << event.dump(0) << '\n';
  OTEM_REQUIRE(!out_.fail(), "JSONL write failed: " + path_);
  ++lines_;
}

void JsonlWriter::close() {
  if (!out_.is_open()) return;
  out_.flush();
  const bool ok = !out_.fail();
  out_.close();
  OTEM_REQUIRE(ok, "JSONL flush failed: " + path_);
}

}  // namespace otem::obs
