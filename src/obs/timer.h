// timer.h — RAII wall-clock probes feeding latency histograms.
//
// ScopedTimer samples a steady clock on construction and records the
// elapsed microseconds into a Histogram on destruction. The enabled()
// check happens once, at construction: when observability is off (or
// compiled out with OTEM_OBS_DISABLED) the timer holds a null target,
// touches no clock, and the destructor is a branch on a register — the
// disabled path costs nothing measurable.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace otem::obs {

/// Microseconds since an arbitrary steady epoch.
inline double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& target)
      : target_(enabled() ? &target : nullptr),
        start_us_(target_ ? now_us() : 0.0) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (target_) target_->record(now_us() - start_us_);
  }

  /// Elapsed so far [us]; 0 when disabled.
  double elapsed_us() const { return target_ ? now_us() - start_us_ : 0.0; }

 private:
  Histogram* target_;
  double start_us_;
};

}  // namespace otem::obs
