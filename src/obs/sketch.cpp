#include "obs/sketch.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/error.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace otem::obs {

// --- QuantileSketch -----------------------------------------------------

QuantileSketch::QuantileSketch(size_t k) : k_(k) {
  OTEM_REQUIRE(k_ >= 8, "quantile sketch needs k >= 8");
}

void QuantileSketch::add(double value) {
  if (n_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++n_;
  sum_ += value;
  if (levels_.empty()) {
    levels_.emplace_back();
    parity_.push_back(0);
    levels_[0].reserve(k_);
  }
  levels_[0].push_back(value);
  for (size_t l = 0; l < levels_.size() && levels_[l].size() >= k_; ++l)
    compact_level(l);
}

void QuantileSketch::compact_level(size_t level) {
  if (level + 1 >= levels_.size()) {
    levels_.emplace_back();
    parity_.push_back(0);
    levels_[level + 1].reserve(k_);
  }
  std::vector<double>& buf = levels_[level];
  std::sort(buf.begin(), buf.end());
  // Promote every second element of the even prefix (weight doubles, so
  // total weight is conserved); an odd straggler stays behind at this
  // level. The surviving parity alternates per level, which is what
  // makes the selection deterministic without being systematically
  // biased toward either rank side.
  const size_t m = buf.size() & ~size_t{1};
  std::vector<double>& up = levels_[level + 1];
  for (size_t i = parity_[level]; i < m; i += 2) up.push_back(buf[i]);
  parity_[level] ^= 1;
  const bool straggler = buf.size() != m;
  const double tail = straggler ? buf.back() : 0.0;
  buf.clear();
  if (straggler) buf.push_back(tail);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  OTEM_REQUIRE(k_ == other.k_,
               "cannot merge quantile sketches with different k");
  if (other.n_ == 0) return;
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  n_ += other.n_;
  sum_ += other.sum_;
  for (size_t l = 0; l < other.levels_.size(); ++l) {
    if (other.levels_[l].empty()) continue;
    while (l >= levels_.size()) {
      levels_.emplace_back();
      parity_.push_back(0);
    }
    levels_[l].insert(levels_[l].end(), other.levels_[l].begin(),
                      other.levels_[l].end());
  }
  for (size_t l = 0; l < levels_.size(); ++l)
    if (levels_[l].size() >= k_) compact_level(l);
}

double QuantileSketch::min() const { return n_ ? min_ : 0.0; }
double QuantileSketch::max() const { return n_ ? max_ : 0.0; }

Json QuantileSketch::to_json() const {
  Json doc = Json::object();
  doc.set("k", k_);
  doc.set("n", static_cast<double>(n_));
  doc.set("sum", strings::hex_double(sum_));
  doc.set("min", strings::hex_double(min_));
  doc.set("max", strings::hex_double(max_));
  Json parity = Json::array();
  for (std::uint8_t p : parity_) parity.push(static_cast<int>(p));
  doc.set("parity", std::move(parity));
  Json levels = Json::array();
  for (const std::vector<double>& level : levels_) {
    Json row = Json::array();
    for (double v : level) row.push(strings::hex_double(v));
    levels.push(std::move(row));
  }
  doc.set("levels", std::move(levels));
  return doc;
}

QuantileSketch QuantileSketch::from_json(const Json& doc) {
  const Json* k = doc.find("k");
  OTEM_REQUIRE(k != nullptr && k->is_number(), "sketch json: missing k");
  QuantileSketch out(static_cast<size_t>(k->as_number()));
  const Json* n = doc.find("n");
  OTEM_REQUIRE(n != nullptr && n->is_number(), "sketch json: missing n");
  out.n_ = static_cast<std::uint64_t>(n->as_number());
  const Json* sum = doc.find("sum");
  const Json* min = doc.find("min");
  const Json* max = doc.find("max");
  OTEM_REQUIRE(sum != nullptr && min != nullptr && max != nullptr,
               "sketch json: missing moments");
  out.sum_ = strings::parse_hex_double(sum->as_string());
  out.min_ = strings::parse_hex_double(min->as_string());
  out.max_ = strings::parse_hex_double(max->as_string());
  const Json* parity = doc.find("parity");
  const Json* levels = doc.find("levels");
  OTEM_REQUIRE(parity != nullptr && parity->is_array() &&
                   levels != nullptr && levels->is_array() &&
                   parity->size() == levels->size(),
               "sketch json: parity/levels mismatch");
  for (size_t l = 0; l < levels->size(); ++l) {
    out.levels_.emplace_back();
    out.parity_.push_back(
        static_cast<std::uint8_t>(parity->at(l).as_number()));
    std::vector<double>& row = out.levels_.back();
    row.reserve(out.k_);
    for (const Json& v : levels->at(l).items())
      row.push_back(strings::parse_hex_double(v.as_string()));
  }
  return out;
}

double QuantileSketch::quantile(double q) const {
  if (n_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  std::vector<std::pair<double, std::uint64_t>> items;
  size_t total = 0;
  for (const std::vector<double>& level : levels_) total += level.size();
  items.reserve(total);
  for (size_t l = 0; l < levels_.size(); ++l) {
    const std::uint64_t w = std::uint64_t{1} << l;
    for (double v : levels_[l]) items.emplace_back(v, w);
  }
  std::sort(items.begin(), items.end());
  const double target = q * static_cast<double>(n_);
  double cum = 0.0;
  for (const auto& [value, weight] : items) {
    cum += static_cast<double>(weight);
    if (cum >= target) return value;
  }
  return max_;
}

// --- Sketch (registry instrument) ---------------------------------------

struct Sketch::Shard {
  alignas(64) std::mutex mutex;
  QuantileSketch sketch{kDefaultSketchK};
};

Sketch::Sketch(size_t k) : k_(k), shards_(new Shard[detail::kShards]) {
  for (size_t i = 0; i < detail::kShards; ++i)
    shards_[i].sketch = QuantileSketch(k);
}

Sketch::~Sketch() { delete[] shards_; }

void Sketch::record(double value) {
  if (!enabled()) return;
  Shard& shard = shards_[detail::shard_index()];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.sketch.add(value);
}

void Sketch::merge_in(const QuantileSketch& worker) {
  if (!enabled()) return;
  Shard& shard = shards_[detail::shard_index()];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.sketch.merge(worker);
}

QuantileSketch Sketch::collect() const {
  QuantileSketch out(k_);
  for (size_t i = 0; i < detail::kShards; ++i) {
    const std::lock_guard<std::mutex> lock(shards_[i].mutex);
    out.merge(shards_[i].sketch);
  }
  return out;
}

Sketch::Snapshot Sketch::snapshot() const { return summarize(collect()); }

Sketch::Snapshot summarize(const QuantileSketch& sketch) {
  Sketch::Snapshot out;
  out.count = sketch.count();
  out.sum = sketch.sum();
  out.min = sketch.min();
  out.max = sketch.max();
  out.p50 = sketch.quantile(0.50);
  out.p95 = sketch.quantile(0.95);
  out.p99 = sketch.quantile(0.99);
  out.p999 = sketch.quantile(0.999);
  return out;
}

}  // namespace otem::obs
