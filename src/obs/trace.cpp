#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace otem::obs {

#ifndef OTEM_OBS_DISABLED
namespace {
std::atomic<bool> g_trace_enabled{false};
}  // namespace

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}
#endif

namespace {

/// One ring slot. Every field is an atomic so a collector may read
/// while the owner thread overwrites — a torn record mixes two spans'
/// fields, never produces an invalid pointer or a half-written double.
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<double> ts{0.0};
  std::atomic<double> dur{0.0};
  std::atomic<std::uint64_t> id{0};
  std::atomic<std::uint64_t> parent{0};
  std::atomic<std::uint32_t> depth{0};
};

struct ThreadRing {
  explicit ThreadRing(std::uint32_t tid_) : tid(tid_) {}
  const std::uint32_t tid;
  std::atomic<bool> in_use{false};
  /// Total records ever written; only the owner thread stores it.
  std::atomic<std::uint64_t> head{0};
  /// Span-id sequence; never reset, so ids stay unique across leases.
  std::atomic<std::uint64_t> next_seq{0};
  Slot slots[kTraceRingCapacity];
};

/// Global ring registry. Rings are never destroyed (collectors hold no
/// locks while reading them); a thread that exits releases its ring to
/// the free pool and the next new thread reuses it, so the set is
/// bounded by the peak concurrent thread count.
class Tracer {
 public:
  static Tracer& instance() {
    static Tracer* tracer = new Tracer();  // leaked: outlive all threads
    return *tracer;
  }

  ThreadRing* acquire() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::unique_ptr<ThreadRing>& ring : rings_) {
      if (!ring->in_use.load(std::memory_order_relaxed)) {
        // Do NOT reset head: the previous leaseholder's records stay
        // drainable (flight-recorder semantics — short-lived serve
        // session threads must not wipe each other's spans). The new
        // owner appends after them; trace_reset() is the explicit wipe.
        ring->in_use.store(true, std::memory_order_relaxed);
        return ring.get();
      }
    }
    rings_.push_back(std::make_unique<ThreadRing>(
        static_cast<std::uint32_t>(rings_.size() + 1)));
    rings_.back()->in_use.store(true, std::memory_order_relaxed);
    return rings_.back().get();
  }

  void release(ThreadRing* ring) {
    ring->in_use.store(false, std::memory_order_release);
  }

  std::vector<ThreadRing*> rings() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ThreadRing*> out;
    out.reserve(rings_.size());
    for (const std::unique_ptr<ThreadRing>& ring : rings_)
      out.push_back(ring.get());
    return out;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

/// Thread-local ring lease + active-span stack. The stack holds span
/// ids; depth_ counts opens even past kTraceMaxDepth so pops stay
/// balanced (overdeep spans just record parent 0).
struct Lease {
  ThreadRing* ring = nullptr;
  std::uint64_t stack[kTraceMaxDepth] = {};
  std::uint32_t depth = 0;

  ThreadRing* get() {
    if (!ring) ring = Tracer::instance().acquire();
    return ring;
  }
  ~Lease() {
    if (ring) Tracer::instance().release(ring);
  }
};

thread_local Lease t_lease;

std::uint64_t current_parent(const Lease& lease) {
  if (lease.depth == 0 || lease.depth > kTraceMaxDepth) return 0;
  return lease.stack[lease.depth - 1];
}

std::uint64_t next_span_id(ThreadRing* ring) {
  return (static_cast<std::uint64_t>(ring->tid) << 40) |
         (ring->next_seq.fetch_add(1, std::memory_order_relaxed) + 1);
}

void write_record(ThreadRing* ring, const char* name, double ts_us,
                  double dur_us, std::uint64_t id, std::uint64_t parent,
                  std::uint32_t depth) {
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[head % kTraceRingCapacity];
  slot.name.store(name, std::memory_order_relaxed);
  slot.ts.store(ts_us, std::memory_order_relaxed);
  slot.dur.store(dur_us, std::memory_order_relaxed);
  slot.id.store(id, std::memory_order_relaxed);
  slot.parent.store(parent, std::memory_order_relaxed);
  slot.depth.store(depth, std::memory_order_relaxed);
  // The release publishes the slot stores to an acquiring collector.
  ring->head.store(head + 1, std::memory_order_release);
}

}  // namespace

// --- TraceSpan ----------------------------------------------------------

void TraceSpan::begin(const char* name) {
  Lease& lease = t_lease;
  ThreadRing* ring = lease.get();
  name_ = name;
  parent_ = current_parent(lease);
  depth_ = lease.depth;
  id_ = next_span_id(ring);
  if (lease.depth < kTraceMaxDepth) lease.stack[lease.depth] = id_;
  ++lease.depth;
  start_us_ = now_us();
}

void TraceSpan::finish() {
  const double end_us = now_us();
  Lease& lease = t_lease;
  if (lease.depth > 0) --lease.depth;
  write_record(lease.get(), name_, start_us_, end_us - start_us_, id_,
               parent_, depth_);
}

void trace_emit(const char* name, double ts_us, double dur_us) {
  if (!trace_enabled()) return;
  Lease& lease = t_lease;
  ThreadRing* ring = lease.get();
  write_record(ring, name, ts_us, dur_us, next_span_id(ring),
               current_parent(lease), lease.depth);
}

void trace_reset() {
  for (ThreadRing* ring : Tracer::instance().rings())
    ring->head.store(0, std::memory_order_relaxed);
}

// --- TraceCollector -----------------------------------------------------

std::vector<SpanRecord> TraceCollector::collect() const {
  std::vector<SpanRecord> out;
  for (ThreadRing* ring : Tracer::instance().rings()) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n =
        std::min<std::uint64_t>(head, kTraceRingCapacity);
    for (std::uint64_t i = head - n; i < head; ++i) {
      const Slot& slot = ring->slots[i % kTraceRingCapacity];
      SpanRecord rec;
      rec.name = slot.name.load(std::memory_order_relaxed);
      rec.ts_us = slot.ts.load(std::memory_order_relaxed);
      rec.dur_us = slot.dur.load(std::memory_order_relaxed);
      rec.id = slot.id.load(std::memory_order_relaxed);
      rec.parent = slot.parent.load(std::memory_order_relaxed);
      rec.depth = slot.depth.load(std::memory_order_relaxed);
      rec.tid = ring->tid;
      if (rec.name != nullptr) out.push_back(rec);
    }
  }
  return out;
}

std::vector<TraceCollector::SpanSummary> TraceCollector::summaries() const {
  std::map<std::string, SpanSummary> by_name;
  for (const SpanRecord& rec : collect()) {
    SpanSummary& s = by_name[rec.name];
    ++s.count;
    s.total_us += rec.dur_us;
    s.max_us = std::max(s.max_us, rec.dur_us);
  }
  std::vector<SpanSummary> out;
  out.reserve(by_name.size());
  for (auto& [name, summary] : by_name) {
    summary.name = name;
    out.push_back(std::move(summary));
  }
  return out;
}

Json TraceCollector::to_chrome_json() const {
  std::vector<SpanRecord> spans = collect();
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_us < b.ts_us;
                   });
  Json root = Json::object();
  root.set("schema", "otem.trace.v1");
  root.set("displayTimeUnit", "ms");
  Json events = Json::array();
  for (const SpanRecord& span : spans) {
    Json e = Json::object();
    e.set("name", span.name);
    e.set("cat", "otem");
    e.set("ph", "X");
    e.set("ts", span.ts_us);
    e.set("dur", span.dur_us);
    e.set("pid", 1.0);
    e.set("tid", static_cast<double>(span.tid));
    Json args = Json::object();
    args.set("id", static_cast<double>(span.id));
    args.set("parent", static_cast<double>(span.parent));
    args.set("depth", static_cast<double>(span.depth));
    e.set("args", std::move(args));
    events.push(std::move(e));
  }
  root.set("traceEvents", std::move(events));
  return root;
}

void TraceCollector::write_chrome_trace(const std::string& path) const {
  write_json_file(path, to_chrome_json());
}

void TraceCollector::record_durations(MetricsRegistry& registry,
                                      const std::string& prefix) const {
  std::map<std::string, std::vector<double>> durations;
  for (const SpanRecord& rec : collect())
    durations[rec.name].push_back(rec.dur_us);
  for (const auto& [name, durs] : durations) {
    Sketch& sketch = registry.sketch(prefix + name + ".dur_us");
    for (double d : durs) sketch.record(d);
  }
}

}  // namespace otem::obs
