// jsonl.h — append-only JSON Lines writer.
//
// One compact JSON object per line, streamed straight to disk — O(1)
// memory no matter how many events a run emits. Stream failure (full
// disk, revoked mount) is detected on every write and raised as
// otem::SimError with the path, never silently truncated.
#pragma once

#include <fstream>
#include <string>

#include "common/json.h"

namespace otem::obs {

class JsonlWriter {
 public:
  /// Opens `path` for writing (truncates); throws otem::SimError when
  /// that fails.
  explicit JsonlWriter(const std::string& path);

  /// Serialise `event` compactly and append it as one line; throws
  /// otem::SimError when the stream has failed.
  void write(const Json& event);

  /// Flush and verify the stream; throws otem::SimError on failure.
  /// Called by the destructor too, but the destructor swallows the
  /// error — call close() where loss must be loud.
  void close();

  const std::string& path() const { return path_; }
  size_t lines_written() const { return lines_; }

 private:
  std::string path_;
  std::ofstream out_;
  size_t lines_ = 0;
};

}  // namespace otem::obs
