#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace otem::obs {

#ifndef OTEM_OBS_DISABLED
namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }
#endif

namespace detail {
size_t shard_index() {
  static std::atomic<size_t> next{0};
  thread_local const size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  static_assert((kShards & (kShards - 1)) == 0, "kShards must be 2^k");
  return id & (kShards - 1);
}

namespace {
void atomic_min(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomic_max(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace
}  // namespace detail

// --- Counter ------------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const detail::CounterSlot& s : shards_)
    total += s.value.load(std::memory_order_relaxed);
  return total;
}

// --- Histogram ----------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)) {
  OTEM_REQUIRE(!edges_.empty(), "histogram needs at least one bucket edge");
  OTEM_REQUIRE(std::is_sorted(edges_.begin(), edges_.end()),
               "histogram bucket edges must be ascending");
  const size_t buckets = edges_.size() + 1;  // + overflow
  // Round the per-shard slot count up to a cache line of uint64s so
  // shards never share a line.
  stride_ = (buckets + 7) & ~size_t{7};
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      detail::kShards * stride_);
  for (Summary& s : summaries_) {
    s.min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
  }
}

void Histogram::record(double value) {
  if (!enabled()) return;
  // First edge >= value: `le` semantics (inclusive upper bound).
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), value) -
      edges_.begin());
  const size_t shard = detail::shard_index();
  counts_[shard * stride_ + bucket].fetch_add(1, std::memory_order_relaxed);
  Summary& s = summaries_[shard];
  s.n.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  detail::atomic_min(s.min, value);
  detail::atomic_max(s.max, value);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.upper_edges = edges_;
  out.counts.assign(edges_.size() + 1, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (size_t shard = 0; shard < detail::kShards; ++shard) {
    for (size_t b = 0; b < out.counts.size(); ++b)
      out.counts[b] +=
          counts_[shard * stride_ + b].load(std::memory_order_relaxed);
    const Summary& s = summaries_[shard];
    out.count += s.n.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    max = std::max(max, s.max.load(std::memory_order_relaxed));
  }
  out.min = out.count ? min : 0.0;
  out.max = out.count ? max : 0.0;
  return out;
}

// --- MetricsRegistry ----------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(
    const std::string& name, const std::vector<double>& upper_edges) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(upper_edges);
  } else {
    OTEM_REQUIRE(slot->upper_edges() == upper_edges,
                 "histogram re-registered with different edges: " + name);
  }
  return *slot;
}

Sketch& MetricsRegistry::sketch(const std::string& name, size_t k) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = sketches_[name];
  if (!slot) {
    slot = std::make_unique<Sketch>(k);
  } else {
    OTEM_REQUIRE(slot->k() == k,
                 "sketch re-registered with different k: " + name);
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_)
    out.histograms[name] = h->snapshot();
  for (const auto& [name, s] : sketches_) out.sketches[name] = s->snapshot();
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

// --- bucket ladders -----------------------------------------------------

namespace {
std::vector<double> ladder_1_2_5(double lo, double hi) {
  std::vector<double> edges;
  for (double decade = lo; decade <= hi * 1.0001; decade *= 10.0)
    for (double m : {1.0, 2.0, 5.0})
      if (m * decade <= hi * 1.0001) edges.push_back(m * decade);
  return edges;
}
}  // namespace

std::vector<double> latency_buckets_us() {
  return ladder_1_2_5(1.0, 1e7);
}

std::vector<double> iteration_buckets() {
  auto edges = ladder_1_2_5(1.0, 5000.0);
  return edges;
}

std::vector<double> residual_buckets() {
  std::vector<double> edges;
  for (int e = -10; e <= 0; ++e) edges.push_back(std::pow(10.0, e));
  return edges;
}

// --- JSON rendering -----------------------------------------------------

Json snapshot_to_json(const MetricsSnapshot& snapshot) {
  Json root = Json::object();
  root.set("schema", "otem.metrics.v1");

  Json counters = Json::object();
  for (const auto& [name, value] : snapshot.counters)
    counters.set(name, static_cast<double>(value));
  root.set("counters", std::move(counters));

  Json gauges = Json::object();
  for (const auto& [name, value] : snapshot.gauges) gauges.set(name, value);
  root.set("gauges", std::move(gauges));

  Json histograms = Json::object();
  for (const auto& [name, h] : snapshot.histograms) {
    Json hj = Json::object();
    hj.set("count", static_cast<double>(h.count));
    hj.set("sum", h.sum);
    hj.set("min", h.min);
    hj.set("max", h.max);
    hj.set("mean", h.count ? h.sum / static_cast<double>(h.count) : 0.0);
    Json buckets = Json::array();
    for (size_t b = 0; b < h.counts.size(); ++b) {
      Json bucket = Json::object();
      if (b < h.upper_edges.size())
        bucket.set("le", h.upper_edges[b]);
      else
        bucket.set("le", "inf");
      bucket.set("count", static_cast<double>(h.counts[b]));
      buckets.push(std::move(bucket));
    }
    hj.set("buckets", std::move(buckets));
    histograms.set(name, std::move(hj));
  }
  root.set("histograms", std::move(histograms));

  Json sketches = Json::object();
  for (const auto& [name, s] : snapshot.sketches) {
    Json sj = Json::object();
    sj.set("count", static_cast<double>(s.count));
    sj.set("sum", s.sum);
    sj.set("min", s.min);
    sj.set("max", s.max);
    sj.set("mean", s.count ? s.sum / static_cast<double>(s.count) : 0.0);
    sj.set("p50", s.p50);
    sj.set("p95", s.p95);
    sj.set("p99", s.p99);
    sj.set("p999", s.p999);
    sketches.set(name, std::move(sj));
  }
  root.set("sketches", std::move(sketches));
  return root;
}

void write_metrics_json(const std::string& path,
                        const MetricsRegistry& registry) {
  write_json_file(path, snapshot_to_json(registry.snapshot()));
}

}  // namespace otem::obs
