// sketch.h — mergeable streaming quantile estimation.
//
// QuantileSketch is a fixed-k KLL-style compactor hierarchy: level i
// holds up to k raw samples each standing for 2^i originals, and a
// full level sorts itself and promotes every second element (the
// surviving parity alternates per level, so the selection is
// DETERMINISTIC — no RNG). Feeding the same values in the same order
// always yields the same sketch, and merge() is deterministic in its
// operand order, so per-worker sketches combined in worker order give
// the same quantiles at every thread count. Memory is O(k log(n/k))
// regardless of the stream length; the rank error of quantile(q) is a
// small multiple of 1/k (tests/test_trace.cpp pins <= 2% at the
// default k against exact quantiles of known distributions).
//
// Sketch is the thread-safe registry instrument built on top: kShards
// mutex-guarded QuantileSketches indexed by the same thread-local
// shard id the counters use, so concurrent writers virtually never
// contend. collect() merges the shards IN SHARD ORDER into one
// QuantileSketch; snapshot() derives the p50/p95/p99/p999 summary that
// otem.metrics.v1 snapshots embed. The obs kill switches apply:
// record() is a no-op when set_enabled(false) or OTEM_OBS_DISABLED.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/json.h"

namespace otem::obs {

/// Default compactor width. 256 keeps worst-case rank error well under
/// 2% while a million-sample sketch stays under ~40 KiB.
constexpr size_t kDefaultSketchK = 256;

/// Single-writer mergeable quantile sketch (no internal locking —
/// wrap in Sketch for concurrent recording).
class QuantileSketch {
 public:
  explicit QuantileSketch(size_t k = kDefaultSketchK);

  /// Stream one sample. Amortized O(log k); allocation only when a new
  /// level first opens.
  void add(double value);

  /// Fold `other` into this sketch (same k required). The result is a
  /// valid sketch over the union of both streams; deterministic given
  /// the operand order.
  void merge(const QuantileSketch& other);

  /// Exact stream length (not an estimate).
  std::uint64_t count() const { return n_; }
  /// Exact running sum / extrema (0 when empty).
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  size_t k() const { return k_; }

  /// Estimated q-quantile for q in [0, 1]; exact min/max at the
  /// endpoints, 0 when the sketch is empty.
  double quantile(double q) const;

  /// Serialize the COMPLETE internal state (levels, parity, running
  /// moments) for checkpoint files. Doubles are encoded as IEEE-754 bit
  /// patterns in hex, so from_json(to_json(s)) is bit-identical to s:
  /// feeding or merging the same stream into either afterwards yields
  /// byte-equal sketches — the property campaign resume rests on.
  Json to_json() const;
  static QuantileSketch from_json(const Json& doc);

 private:
  void compact_level(size_t level);

  size_t k_;
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
  /// levels_[i] holds samples of weight 2^i, unsorted between
  /// compactions.
  std::vector<std::vector<double>> levels_;
  /// Per-level surviving parity, flipped on every compaction.
  std::vector<std::uint8_t> parity_;
};

/// Thread-safe named instrument over QuantileSketch (see header
/// comment). Register through MetricsRegistry::sketch().
class Sketch {
 public:
  explicit Sketch(size_t k = kDefaultSketchK);

  /// Record one sample; wait-free against other shards, a brief
  /// uncontended mutex within one. No-op when recording is disabled.
  void record(double value);

  /// Fold an externally-built sketch (e.g. one worker's private
  /// QuantileSketch) into this instrument.
  void merge_in(const QuantileSketch& worker);

  /// Ordered (shard 0..kShards-1) merge of the shards.
  QuantileSketch collect() const;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
  };
  Snapshot snapshot() const;

  size_t k() const { return k_; }

  Sketch(const Sketch&) = delete;
  Sketch& operator=(const Sketch&) = delete;
  ~Sketch();

 private:
  struct Shard;
  size_t k_;
  Shard* shards_;  ///< kShards slots, cache-line separated
};

/// Summary of an already-collected sketch (what Sketch::snapshot()
/// derives from collect()).
Sketch::Snapshot summarize(const QuantileSketch& sketch);

}  // namespace otem::obs
