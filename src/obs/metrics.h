// metrics.h — thread-safe instrumentation registry.
//
// A MetricsRegistry owns named counters, gauges and fixed-bucket
// histograms. Counters and histograms are SHARDED: each instrument
// keeps kShards cache-line-separated atomic slots and a thread writes
// the slot picked by its thread-local shard id, so concurrent missions
// on the exec::ThreadPool update the same instrument without
// contending on one cache line. snapshot() aggregates the shards into
// plain numbers; totals are exact (integers summed) whenever the
// registry is quiescent, so `threads=N` produces the same snapshot as
// `threads=1` for the same work.
//
// Gauges are last-write-wins (a single atomic slot, no sharding) —
// they record a level, not a rate.
//
// Kill switch: obs::set_enabled(false) turns every record path into a
// cheap early-out (one relaxed load), and compiling with
// -DOTEM_OBS_DISABLED makes enabled() a constant so the compiler
// removes the instrumentation entirely. Instrument REGISTRATION always
// works; only recording is gated, so snapshots of a disabled registry
// are well-formed (all zeros).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/sketch.h"

namespace otem::obs {

/// Global recording switch (process-wide, default on).
#ifdef OTEM_OBS_DISABLED
constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#else
bool enabled();
void set_enabled(bool on);
#endif

namespace detail {
/// Shard count per instrument. A power of two so the shard pick is a
/// mask; 16 slots × 64 B keeps an instrument within 1 KiB.
constexpr size_t kShards = 16;

/// This thread's shard slot: a thread-local id assigned on first use,
/// masked into [0, kShards).
size_t shard_index();

/// One cache line worth of padding between shard slots.
struct alignas(64) CounterSlot {
  std::atomic<std::uint64_t> value{0};
};
struct alignas(64) GaugeSlot {
  std::atomic<double> value{0.0};
};
}  // namespace detail

/// Monotonic event count. add() is wait-free; value() is exact when
/// writers are quiescent.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::shard_index()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;

 private:
  detail::CounterSlot shards_[detail::kShards];
};

/// Last-written level (not sharded: the latest set wins globally).
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    value_.value.store(v, std::memory_order_relaxed);
  }
  double value() const {
    return value_.value.load(std::memory_order_relaxed);
  }

 private:
  detail::GaugeSlot value_;
};

/// Fixed-bucket histogram: `upper_edges` are inclusive upper bounds in
/// ascending order, plus one implicit overflow bucket. record() also
/// tracks count/sum/min/max for summary statistics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_edges);

  void record(double value);

  const std::vector<double>& upper_edges() const { return edges_; }

  struct Snapshot {
    std::vector<double> upper_edges;
    std::vector<std::uint64_t> counts;  ///< edges.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
  };
  Snapshot snapshot() const;

 private:
  struct alignas(64) Summary {
    std::atomic<std::uint64_t> n{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  ///< +inf until the first record
    std::atomic<double> max{0.0};  ///< -inf until the first record
  };

  std::vector<double> edges_;
  size_t stride_ = 0;  ///< bucket slots per shard, cache-line aligned
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< kShards*stride_
  Summary summaries_[detail::kShards];
};

/// Aggregated view of a whole registry; maps keep names sorted so the
/// JSON rendering is byte-stable for a given set of values.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
  std::map<std::string, Sketch::Snapshot> sketches;
};

/// Named instrument registry. Lookup/creation takes a mutex (do it once
/// per run, not per step); the returned references stay valid for the
/// registry's lifetime and their record paths are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Registers the histogram on first use; a second call with the same
  /// name returns the existing instrument (edges must match — throws
  /// otem::SimError otherwise).
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_edges);
  /// Mergeable quantile sketch (obs/sketch.h); k must match on
  /// re-registration (throws otem::SimError otherwise).
  Sketch& sketch(const std::string& name, size_t k = kDefaultSketchK);

  MetricsSnapshot snapshot() const;

  /// Process-wide default registry.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Sketch>> sketches_;
};

/// Common bucket ladders.
/// 1-2-5 ladder covering [1 us, 10 s] — the latency default.
std::vector<double> latency_buckets_us();
/// 1-2-5 ladder covering [1, 5000] — iteration counts.
std::vector<double> iteration_buckets();
/// Powers of ten covering [1e-10, 1] — solver residuals.
std::vector<double> residual_buckets();

/// Stable JSON rendering of a snapshot (schema "otem.metrics.v1"):
/// {"schema": ..., "counters": {name: n}, "gauges": {name: v},
///  "histograms": {name: {count,sum,min,max,mean,
///                        buckets:[{le,count}...]}},
///  "sketches": {name: {count,sum,min,max,mean,p50,p95,p99,p999}}}
/// Bucket objects carry their inclusive upper edge `le`; the overflow
/// bucket's edge is the string "inf". Names are sorted. The "sketches"
/// section is additive (readers of the pre-sketch v1 shape ignore it).
Json snapshot_to_json(const MetricsSnapshot& snapshot);

/// snapshot() + snapshot_to_json() + write to `path`; throws
/// otem::SimError on I/O failure.
void write_metrics_json(const std::string& path,
                        const MetricsRegistry& registry);

}  // namespace otem::obs
