// trace.h — hierarchical span tracing (a flight recorder).
//
// A TraceSpan is an RAII probe: construction timestamps the start,
// destruction writes one completed-span record into this thread's ring
// buffer. Parent/child nesting is carried by a thread-local
// active-span stack — a span opened while another is live records that
// span's id as its parent — so a drained trace reconstructs the call
// tree (serve.request → scenario.run → ltv.solve → qp.factorize).
//
// The recorder is built for always-on production use:
//   - per-thread ring buffers of kTraceRingCapacity slots, newest-wins
//     overwrite: memory is fixed, old spans fall off the back;
//   - zero allocation on the hot path: a thread's ring is acquired
//     once (first span on that thread) and slot writes are plain
//     relaxed atomic stores — rings are recycled through a free list
//     when threads exit, so churning session threads do not grow the
//     process;
//   - kill switches matching obs/metrics.h: tracing is OFF by default
//     and costs one relaxed load per span; set_trace_enabled(true)
//     turns it on at runtime, and compiling with -DOTEM_OBS_DISABLED
//     (CMake -DOTEM_DISABLE_OBS=ON) removes it entirely;
//   - TSan-clean concurrent draining: every slot field is an atomic,
//     so a TraceCollector may read while writers write. A record being
//     overwritten at that instant can mix fields of two spans — the
//     price of a lock-free flight recorder; drain at quiescence (end
//     of run, serve stats) for exact traces.
//
// TraceCollector drains the rings into Chrome trace-event JSON
// (schema "otem.trace.v1" — load the file in chrome://tracing or
// https://ui.perfetto.dev), into per-name summaries (the serve `stats`
// method), or into span-duration Sketch instruments in a
// MetricsRegistry.
//
// All timestamps share obs::now_us()'s steady epoch, so spans emitted
// by different layers (and trace_emit() records made from timings the
// caller already took) nest consistently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace otem::obs {

class MetricsRegistry;

/// Runtime tracing switch (process-wide, default OFF — tracing is
/// opt-in, unlike metrics). Independent of obs::set_enabled.
#ifdef OTEM_OBS_DISABLED
constexpr bool trace_enabled() { return false; }
inline void set_trace_enabled(bool) {}
#else
bool trace_enabled();
void set_trace_enabled(bool on);
#endif

/// Slots per thread ring. 2048 spans outlives any single request's
/// span tree by a wide margin (~80 KiB per thread).
constexpr size_t kTraceRingCapacity = 2048;
/// Nesting deeper than this still records spans, but with parent 0.
constexpr size_t kTraceMaxDepth = 32;

/// One completed span as drained from a ring. `name` points at the
/// static string literal the span was created with.
struct SpanRecord {
  const char* name = nullptr;
  double ts_us = 0.0;   ///< start, obs::now_us() epoch
  double dur_us = 0.0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root span
  std::uint32_t tid = 0;     ///< stable per-ring thread id (1-based)
  std::uint32_t depth = 0;
};

/// RAII span. `name` MUST be a string literal (or otherwise outlive
/// every drain): rings store the pointer, not a copy.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_enabled()) begin(name);
  }
  ~TraceSpan() {
    if (id_ != 0) finish();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void begin(const char* name);
  void finish();

  const char* name_ = nullptr;
  double start_us_ = 0.0;
  std::uint64_t id_ = 0;  ///< 0 = inactive (tracing was off at entry)
  std::uint64_t parent_ = 0;
  std::uint32_t depth_ = 0;
};

/// Record an already-timed interval as a span under the current
/// thread's active span (no clock reads — for hot loops that timed the
/// interval anyway, like the simulator's sampled step timing).
void trace_emit(const char* name, double ts_us, double dur_us);

/// Reset every ring to empty. Call at quiescence (between runs); a
/// thread writing concurrently may keep a handful of spans.
void trace_reset();

/// Drains the per-thread rings. Stateless — each call reads the
/// current ring contents (the newest <= kTraceRingCapacity spans per
/// thread that ever traced).
class TraceCollector {
 public:
  /// All live span records, per-thread oldest-first.
  std::vector<SpanRecord> collect() const;

  /// Per-name aggregate over collect(), sorted by name.
  struct SpanSummary {
    std::string name;
    std::uint64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::vector<SpanSummary> summaries() const;

  /// Chrome trace-event JSON (schema "otem.trace.v1"): complete "X"
  /// events sorted by (tid, ts), args carrying id/parent/depth.
  Json to_chrome_json() const;

  /// to_chrome_json() + write to `path`; throws otem::SimError on I/O
  /// failure.
  void write_chrome_trace(const std::string& path) const;

  /// Record every drained span's duration into
  /// `<prefix><name>.dur_us` Sketch instruments in `registry`.
  void record_durations(MetricsRegistry& registry,
                        const std::string& prefix = "trace.") const;
};

}  // namespace otem::obs
