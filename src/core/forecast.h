// forecast.h — power-request prediction models for the OTEM MPC.
//
// The paper's Algorithm 1 consumes "Estimated Power Request P_hat_e"
// produced by modelling the power train and driving route [3]; the
// evaluation implicitly uses a perfect prediction. A deployed OTEM sees
// an imperfect forecast, so the library models the prediction channel
// explicitly: the methodology asks a ForecastModel for the window it
// hands the MPC, and the plant always serves the TRUE request. The
// `bench/ablation_forecast` experiment quantifies how gracefully the
// controller degrades — the reliability question the paper's research
// challenge 3 raises.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/timeseries.h"

namespace otem::core {

class ForecastModel {
 public:
  virtual ~ForecastModel() = default;

  virtual std::string name() const = 0;

  /// Called once per run with the true future trace.
  virtual void reset(const TimeSeries& truth) = 0;

  /// Predicted requests for steps [k, k + horizon) — at most `horizon`
  /// values; may return fewer near the route end (the MPC pads).
  virtual std::vector<double> window(size_t k, size_t horizon) const = 0;
};

/// Perfect prediction — the paper's evaluation setting.
class PerfectForecast final : public ForecastModel {
 public:
  std::string name() const override { return "perfect"; }
  void reset(const TimeSeries& truth) override { truth_ = truth; }
  std::vector<double> window(size_t k, size_t horizon) const override;

 private:
  TimeSeries truth_;
};

/// Noisy prediction: each forecast sample carries multiplicative and
/// additive Gaussian error that GROWS with lead time (near-future is
/// known well, the window tail poorly) — the signature of real route
/// predictors. Deterministic per (seed, step, lead).
class NoisyForecast final : public ForecastModel {
 public:
  /// `relative_sigma` is the 1-lead-step multiplicative error std; it
  /// scales with sqrt(lead). `absolute_sigma_w` likewise [W].
  NoisyForecast(std::uint64_t seed, double relative_sigma,
                double absolute_sigma_w);

  std::string name() const override;
  void reset(const TimeSeries& truth) override { truth_ = truth; }
  std::vector<double> window(size_t k, size_t horizon) const override;

 private:
  std::uint64_t seed_;
  double relative_sigma_;
  double absolute_sigma_w_;
  TimeSeries truth_;
};

/// Route-level prediction: only a smoothed profile of the route is
/// known (moving average over `smooth_window_s`), as a navigation
/// system would provide — no individual acceleration spikes.
class SmoothedForecast final : public ForecastModel {
 public:
  explicit SmoothedForecast(double smooth_window_s);

  std::string name() const override { return "smoothed"; }
  void reset(const TimeSeries& truth) override;
  std::vector<double> window(size_t k, size_t horizon) const override;

 private:
  double smooth_window_s_;
  TimeSeries smoothed_;
};

/// No prediction at all: the controller only knows the current request
/// and assumes it persists (zero-order hold) — the reactive lower
/// bound.
class PersistenceForecast final : public ForecastModel {
 public:
  std::string name() const override { return "persistence"; }
  void reset(const TimeSeries& truth) override { truth_ = truth; }
  std::vector<double> window(size_t k, size_t horizon) const override;

 private:
  TimeSeries truth_;
};

/// Factory from a spec string: "perfect", "persistence",
/// "smoothed:<window_s>", "noisy:<seed>:<rel_sigma>:<abs_sigma_w>".
std::unique_ptr<ForecastModel> make_forecast(const std::string& spec);

}  // namespace otem::core
