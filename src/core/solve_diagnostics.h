// solve_diagnostics.h — what the MPC solver did this step.
//
// Controllers fill one of these per solve; OtemMethodology stamps it
// (plus wall-clock) onto the StepRecord, so every step's solver
// behaviour flows through the same telemetry pipeline as the plant
// physics — sim::DiagnosticsSink turns the stream into distributions,
// sim::JsonlEventSink writes it to disk. Baseline methodologies leave
// `present == false` (they run no solver).
#pragma once

#include <cstddef>

namespace otem::core {

struct SolveDiagnostics {
  bool present = false;      ///< a solver ran this step
  bool converged = true;
  bool fallback = false;     ///< cold start: no usable warm start

  size_t iterations = 0;     ///< NLP inner iterations (shooting path)
  size_t sqp_rounds = 0;     ///< linearise-solve-apply rounds (LTV path)
  size_t qp_iterations = 0;  ///< ADMM iterations, summed over rounds
  size_t qp_rho_updates = 0; ///< adaptive-rho rebalances, summed
  size_t qp_warm_hits = 0;   ///< QP rounds seeded from a warm start
  size_t kkt_refactorizations = 0;  ///< Cholesky factorisations paid
  /// Fixed-size stage-block kernel applications, summed over rounds
  /// (banded KKT path; 0 when the dense path or shooting solver ran).
  size_t stage_block_ops = 0;
  /// QP rounds whose active-set polish was accepted (banded KKT path
  /// with QpOptions::polish; see QpResult::polished).
  size_t qp_polish_hits = 0;

  double cost = 0.0;                  ///< objective at the accepted point
  double constraint_violation = 0.0;  ///< max_i c_i (shooting path)
  double primal_residual = 0.0;       ///< last QP solve (LTV path)
  double dual_residual = 0.0;
  double solve_time_us = 0.0;         ///< wall clock of the whole solve
};

}  // namespace otem::core
