#include "core/cooling_methodology.h"

#include <algorithm>
#include <cmath>

#include "core/methodology_registry.h"

namespace otem::core {

CoolingPolicyParams CoolingPolicyParams::from_config(const Config& cfg) {
  CoolingPolicyParams p;
  p.inlet_target_k = cfg.get_double("cooling.inlet_target_k", p.inlet_target_k);
  p.engage_above_k = cfg.get_double("cooling.engage_above_k", p.engage_above_k);
  return p;
}

CoolingMethodology::CoolingMethodology(const SystemSpec& spec,
                                       CoolingPolicyParams policy)
    : battery_(spec.make_battery()),
      fade_(spec.battery.cell),
      cooling_(spec.make_cooling()),
      policy_(policy),
      ambient_k_(spec.ambient_k),
      pump_w_(spec.thermal.pump_power_w) {}

void CoolingMethodology::reset(const PlantState&, const TimeSeries&) {}

StepRecord CoolingMethodology::step(PlantState& state, double p_e_w,
                                    size_t /*k*/, double dt) {
  StepRecord rec;
  rec.p_load_w = p_e_w;

  // Fixed-inlet policy: whenever the pack is warm, spend whatever it
  // takes (up to the C3 cap) to hold the inlet at the target.
  const bool engaged = state.t_battery_k > policy_.engage_above_k;
  double p_cool = 0.0;
  if (engaged) {
    p_cool = std::min(
        cooling_.cooler_power(state.t_coolant_k, ambient_k_,
                              policy_.inlet_target_k),
        cooling_.params().max_cooler_power_w);
  }
  const double p_pump = engaged ? pump_w_ : 0.0;

  // The cooler and pump draw from the same battery as the traction load.
  const double tb = state.t_battery_k;
  const double p_total = p_e_w + p_cool + p_pump;
  const battery::PowerSolve solve =
      battery_.current_for_power(state.soc_percent, tb, p_total);
  const double i_b = solve.current_a;
  const double voc = battery_.open_circuit_voltage(state.soc_percent);
  const double rb = battery_.internal_resistance(state.soc_percent, tb);
  const double q_bat = battery_.heat_generation(state.soc_percent, tb, i_b);

  const double t_inlet =
      cooling_.inlet_for_power(state.t_coolant_k, ambient_k_, p_cool);
  const thermal::ThermalState th = cooling_.step(
      {state.t_battery_k, state.t_coolant_k}, q_bat, t_inlet, dt);

  state.t_battery_k = th.t_battery_k;
  state.t_coolant_k = th.t_coolant_k;
  state.soc_percent = battery_.step_soc(state.soc_percent, i_b, dt);
  // No ultracapacitor in this architecture; SoE untouched.

  rec.p_cooler_w = p_cool;
  rec.p_pump_w = p_pump;
  rec.t_inlet_k = t_inlet;
  rec.i_bat_a = i_b;
  rec.q_bat_w = q_bat;
  rec.e_bat_j = voc * i_b * dt;
  rec.e_cooling_j = (p_cool + p_pump) * dt;
  rec.e_loss_j = i_b * i_b * rb * dt;
  rec.qloss_percent = fade_.loss_for_step(
      std::max(i_b, 0.0) / battery_.params().parallel, tb, dt);
  rec.feasible = solve.feasible;
  rec.state_after = state;
  return rec;
}

namespace detail {
void register_cooling_methodology(MethodologyRegistry& registry) {
  registry.add("active_cooling",
               [](const SystemSpec& spec, const Config& cfg) {
                 return std::make_unique<CoolingMethodology>(
                     spec, CoolingPolicyParams::from_config(cfg));
               });
}
}  // namespace detail

}  // namespace otem::core
