#include "core/teb.h"

#include <algorithm>

namespace otem::core {

TebMetric::TebMetric(const SystemSpec& spec)
    : battery_heat_capacity_(spec.thermal.battery_heat_capacity),
      t_max_k_(spec.thermal.max_battery_temp_k),
      t_min_k_(spec.thermal.min_battery_temp_k),
      soe_floor_(spec.ultracap.min_soe_percent),
      cap_energy_j_(spec.ultracap.energy_capacity_j()) {}

TebValue TebMetric::evaluate(const PlantState& state) const {
  TebValue v;
  const double headroom_k = std::max(0.0, t_max_k_ - state.t_battery_k);
  v.thermal_budget_j = battery_heat_capacity_ * headroom_k;
  v.thermal_fraction =
      std::clamp(headroom_k / (t_max_k_ - t_min_k_), 0.0, 1.0);

  const double usable_percent =
      std::max(0.0, state.soe_percent - soe_floor_);
  v.energy_budget_j = usable_percent / 100.0 * cap_energy_j_;
  v.energy_fraction =
      std::clamp(usable_percent / (100.0 - soe_floor_), 0.0, 1.0);
  return v;
}

}  // namespace otem::core
