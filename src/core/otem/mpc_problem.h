// mpc_problem.h — the OTEM optimisation problem (paper Section III-B).
//
// One receding-horizon instance of Eqs. (17)-(19): given the current
// plant state x = [T_b, T_c, SoE, SoC] and the predicted EV power
// requests P_hat_e over the control window of N steps, choose per step
//   * the ultracapacitor bus power  u_cap  (discharge +, pre-charge -)
//   * the cooler electric power    u_pc   (>= 0)
// minimising   F = sum_k  w1 (P_c dt) + w2 Qloss + w3 (dE_bat + dE_cap)
// subject to the discrete system dynamics (single shooting: states are
// rolled out through the exact plant update equations) and constraints
// C1-C7.
//
// Transcription notes:
//  * The paper's controller input is the inlet temperature T_i; we
//    control the equivalent cooler power u_pc = P_c directly, which
//    turns C2 (T_i <= T_o) and C3 (P_c <= max) into simple box bounds.
//    T_i = passive_inlet(T_c) - u_pc * eta_c / Cdot is recovered
//    analytically (thermal/cooling_system.h).
//  * The battery branch balances the bus: P_bat,bus = P_e + pump + u_pc
//    - u_cap, so C6 (battery power) becomes a state-dependent
//    inequality handled, like C1/C4/C5, by the augmented-Lagrangian
//    outer loop.
//  * Decision variables are normalised to [0, 1] so the inner Adam
//    steps are well-scaled across the (W-scale) power inputs.
//
// Gradients are computed by a hand-written reverse-mode (adjoint) sweep
// through the rollout — one backward pass yields d(cost + w . c)/dz for
// the augmented-Lagrangian inner solver. Validated against central
// finite differences in tests/test_mpc_problem.cpp.
#pragma once

#include <vector>

#include "core/plant_state.h"
#include "core/system_spec.h"
#include "optim/problem.h"

namespace otem::core {

struct MpcWeights {
  // Calibrated so the closed-loop reproduction hits the paper's
  // headline trade-off (Fig. 9: ~12 % average power below the pure
  // active-cooling baseline while Fig. 8/Table I capacity loss stays
  // the lowest of all methodologies). bench/ablation_weights sweeps w2.
  double w1 = 1.0;     ///< cooler energy weight [per J]
  double w2 = 1.5e9;   ///< capacity-loss weight [per % Qloss]
  double w3 = 1.0;     ///< HEES energy weight [per J]
};

struct MpcOptions {
  size_t horizon = 30;  ///< N, control window in steps
  double dt = 1.0;      ///< step duration [s]
  MpcWeights weights;
  double soc_min_percent = 20.0;  ///< C4 lower bound
  double soe_min_percent = 20.0;  ///< C5 lower bound
  /// Terminal value of stored UC energy [cost per J missing from a
  /// full bank at the end of the window]. Energy missing from the bank
  /// must eventually be refilled from the battery through two
  /// conversions, so its cost-to-go is roughly the round-trip loss
  /// fraction (~0.15 J/J). This is what makes the controller keep the
  /// bank charged ahead of demand — the TEB preparation of Fig. 7.
  /// 0 reproduces Eq. 19 literally (ablation).
  double terminal_soe_weight = 0.15;

  /// Terminal aging cost-to-go (standard MPC practice for a truncated
  /// horizon): the window's last battery temperature is charged with
  /// the capacity loss a further `terminal_aging_tail_s` seconds of
  /// driving at `terminal_c_rate` would cause at that temperature,
  ///   w2 * l1 * exp(-l2 / (R T_b,N)) * c_ref^{l3} * tail.
  /// Without it the controller never pre-cools: the Arrhenius benefit
  /// of a cooler pack accrues mostly AFTER the 30 s window, so a
  /// literal Eq. 19 spends cooling energy only when C1 binds. This is
  /// the closed-form stand-in for the longer windows the paper's
  /// MATLAB implementation could afford offline. Set to 0 to disable
  /// (ablation `bench/ablation_horizon`).
  double terminal_aging_tail_s = 900.0;

  /// Reference C-rate of the tail. 0 (default) = ADAPTIVE: estimated
  /// from the mean positive power of the installed forecast window, so
  /// gentle routes do not get pre-cooled for stress that never comes.
  /// > 0 pins it (ablation).
  double terminal_c_rate = 0.0;
  /// Smoothing half-width for |I| in the ageing law [A] (keeps the
  /// gradient defined through zero current).
  double current_smoothing_a = 1.0;

  /// Read overrides with prefix "otem." from cfg.
  static MpcOptions from_config(const Config& cfg);
};

/// Number of inequality constraints per horizon step (C1 x2, C4 x2,
/// C5 x2, C6 x2).
inline constexpr size_t kConstraintsPerStep = 8;

class MpcProblem final : public optim::ConstrainedObjective {
 public:
  MpcProblem(const SystemSpec& spec, MpcOptions options);

  const MpcOptions& options() const { return options_; }

  /// Install the window to optimise: initial state and N predicted
  /// power requests (shorter vectors are padded with their last value;
  /// empty pads with zero).
  void set_window(const PlantState& x0, const std::vector<double>& p_e);

  // --- optim::ConstrainedObjective -------------------------------------
  size_t dim() const override { return 2 * options_.horizon; }
  optim::Box bounds() const override;
  size_t num_constraints() const override {
    return kConstraintsPerStep * options_.horizon;
  }
  double evaluate(const optim::Vector& z, optim::Vector& c_out) override;
  void gradient(const optim::Vector& z, const optim::Vector& w,
                optim::Vector& grad_out) override;

  // --- decoding / introspection ---------------------------------------
  /// Physical controls encoded by z at step k.
  struct Controls {
    double p_cap_bus_w = 0.0;
    double p_cooler_w = 0.0;
  };
  Controls decode(const optim::Vector& z, size_t k) const;

  /// Encode physical controls into the normalised decision space.
  void encode(size_t k, const Controls& controls, optim::Vector& z) const;

  /// Predicted state trajectory of the most recent evaluate() call
  /// (length horizon + 1, element 0 = x0).
  const std::vector<PlantState>& predicted_states() const { return states_; }

  /// First-order model of one step of the rollout around the point of
  /// the most recent evaluate(): with state x = [T_b, T_c, SoC, SoE]
  /// and PHYSICAL controls u = [p_cap_bus_w, p_cooler_w],
  ///   x_{k+1} ~= x*_{k+1} + A (x_k - x*_k) + B (u_k - u*_k).
  /// Consumed by the LTV-QP controller (core/otem/ltv_controller.h).
  struct StepJacobian {
    double a[4][4] = {};
    double b[4][2] = {};
    /// d(battery storage-side power)/d(controls) and its value — the
    /// linearised C6 row.
    double p_bs = 0.0;
    double dpbs_du[2] = {};
    double dpbs_dx[4] = {};
  };

  /// Per-step Jacobians at the most recent evaluate() point.
  std::vector<StepJacobian> linearize() const;

  /// Cost of the most recent evaluate() split by term (w1/w2/w3 parts).
  struct CostBreakdown {
    double cooler = 0.0;
    double aging = 0.0;
    double energy = 0.0;
    double terminal = 0.0;
    double total() const { return cooler + aging + energy + terminal; }
  };
  const CostBreakdown& last_cost() const { return cost_; }

 private:
  /// Per-step forward intermediates retained for the adjoint sweep.
  struct StepCache {
    // Inputs at step start.
    double tb = 0, tc = 0, soc = 0, soe = 0;
    double u_cap = 0, u_pc = 0;
    // Ultracap branch.
    double eta_c = 0, deta_c_dv = 0, dv_dsoe = 0;
    double p_cs = 0, dpcs_du = 0, dpcs_deta = 0;
    // Battery branch.
    double v_b = 0, dvb_dsoc = 0;
    double deta_b_dv = 0;
    double p_bs = 0, dpbs_dpbb = 0, dpbs_deta = 0;
    double r = 0, dr_dsoc = 0, dr_dtb = 0;
    double i = 0, di_dvb = 0, di_dr = 0, di_dpbs = 0;
    double qloss = 0, dqloss_dtb = 0, dqloss_di = 0;
    bool ti_clamped = false;
  };

  battery::PackModel battery_;
  ultracap::BankModel ultracap_;
  hees::Converter bat_conv_;
  hees::Converter cap_conv_;
  thermal::CoolingSystem cooling_;
  thermal::StepMatrix tm_;      ///< trapezoidal thermal coefficients @ dt
  MpcOptions options_;

  double ambient_k_;
  double pump_w_;
  double max_battery_power_w_;  ///< C6 bound (storage side)
  double cap_power_scale_;      ///< |u_cap| <= this (C7)
  double pc_max_;               ///< C3 bound
  double beta_soc_;             ///< SoC per (A s): 100 dt / (3600 Ah)
  double beta_soe_;             ///< SoE per (W s): 100 dt / E_cap
  double entropic_k_;           ///< series * dVoc/dT

  PlantState x0_;
  std::vector<double> p_e_;     ///< padded to horizon
  double tail_c_rate_ = 0.0;    ///< resolved terminal C-rate (see options)

  std::vector<StepCache> cache_;
  std::vector<PlantState> states_;
  CostBreakdown cost_;
};

}  // namespace otem::core
