// ltv_controller.h — linear-time-varying SQP transcription of the OTEM
// problem (the alternative to the shooting/augmented-Lagrangian path).
//
// Per solve:
//   1. roll the nonlinear model out along the incumbent plan (the
//      shifted previous solution),
//   2. linearise the dynamics around that trajectory
//      (MpcProblem::linearize()) and take the exact cost gradient
//      (MpcProblem::gradient with zero constraint weights),
//   3. build a dense convex QP in the control CORRECTION du:
//      a trust-region-regularised linear cost subject to the
//      linearised constraints C1/C4/C5/C6 and the C2/C3/C7 boxes,
//   4. solve with the ADMM QP solver, apply the correction, repeat.
//
// Versus the shooting path it trades global-ish exploration (Adam) for
// crisp constraint handling near a good incumbent. bench/ablation_solver
// compares quality and per-step cost of both.
#pragma once

#include "core/otem/controller_iface.h"
#include "optim/ltv_qp.h"
#include "optim/qp.h"

namespace otem::core {

struct LtvOptions {
  /// Linearise-solve-apply rounds per control step.
  size_t sqp_iterations = 3;

  /// Trust region: per-coordinate |du| cap per round [W].
  double trust_region_w = 15000.0;

  /// Quadratic regularisation floor (cost per W^2) — keeps the QP
  /// strictly convex where the linear cost is flat.
  double regularisation_floor = 1e-6;

  /// Warm-start the ADMM QP with the previous round's / control step's
  /// terminal iterates (shifted one period across steps, like the
  /// incumbent plan). Cold-starts after reset() or on a shape change.
  /// Off reverts to a from-zero solve every round — the A/B switch
  /// bench/perf_solver's BM_LtvControlStep measures.
  bool warm_start = true;

  optim::QpOptions qp;

  LtvOptions() {
    // Stage-structured banded KKT by default: the QP is block-banded by
    // construction and the structured solve is O(H) per iteration
    // instead of O(H^2) matvecs on O(H^3)-factorised dense KKT. Set to
    // kDense to fall back to the condensed oracle path.
    qp.kkt_mode = optim::KktSolveMode::kBanded;
    // The structured solver walks rho up ~4 decades before the stage
    // problems balance. The default rebalance cadence (every 100
    // iterations) is deliberate: a faster cadence lets a warm dual seed
    // (whose early dual residual is misleadingly tiny) slam rho past
    // its equilibrium, where ADMM oscillates and never meets tolerance.
    // The per-update step cap in LtvQpSolver bounds each move too.
    qp.max_iterations = 4000;
    // The QP is assembled in trust-region-normalised variables
    // (|du| <= 1). ADMM itself runs at a deliberately loose tolerance
    // and the polish pass supplies the accuracy: the converged-at-1e-2
    // iterate only has to identify the active set well enough for the
    // polish refinement to settle, after which the solution is
    // active-set-exact — warm and cold solves then agree to machine
    // precision, where the raw loose-eps iterates would drift by tens
    // of kW between re-linearisations. (Without polish this path needs
    // eps ~3e-5 for comparable solution quality, at ~4x the
    // iterations.)
    qp.eps_abs = 1e-2;
    qp.eps_rel = 1e-2;
    qp.polish = true;
    // P's diagonal is |g_u| T-scaled and drifts by ~1e-6 between
    // converged SQP rounds; tolerate that drift before paying a
    // refactorisation (termination still tests the exact data).
    qp.kkt_refactor_tol = 1e-8;
  }
};

class LtvOtemController final : public ControllerIface {
 public:
  LtvOtemController(const SystemSpec& spec, MpcOptions mpc_options,
                    LtvOptions options = {});

  void reset() override;
  MpcProblem::Controls solve(
      const PlantState& state,
      const std::vector<double>& p_e_window) override;
  size_t horizon() const override { return problem_.options().horizon; }

  /// Diagnostics of the most recent solve.
  struct SolveInfo {
    double cost = 0.0;
    size_t qp_iterations = 0;   ///< ADMM iterations, summed over rounds
    bool qp_converged = false;  ///< last round's QP converged
    size_t sqp_rounds = 0;
    size_t qp_rho_updates = 0;  ///< adaptive-rho rebalances, summed
    size_t qp_warm_hits = 0;    ///< QP rounds seeded from a warm start
    size_t kkt_refactorizations = 0;  ///< Cholesky factorisations paid
    /// Fixed-size stage-block kernel applications, summed over rounds
    /// (banded KKT path only; 0 on the dense path).
    size_t stage_block_ops = 0;
    size_t qp_polish_hits = 0;  ///< rounds whose polish was accepted
    double primal_residual = 0.0;  ///< last round's QP
    double dual_residual = 0.0;
    bool fallback = false;      ///< cold start (no usable warm start)
  };
  const SolveInfo& last_solve() const { return info_; }

  SolveDiagnostics diagnostics() const override;

 private:
  MpcProblem problem_;
  LtvOptions options_;

  // Bounds of the physical control variables.
  double cap_power_max_;
  double pc_max_;
  double max_battery_power_w_;
  double t_max_k_;
  double t_min_k_;

  optim::Vector warm_z_;
  bool have_warm_ = false;
  // Terminal ADMM iterates of the most recent QP round, threaded into
  // the next round (same alignment) and the next control step (shifted
  // one period, see shift_qp_warm_start()).
  optim::QpWarmStart qp_warm_;
  bool have_qp_warm_ = false;
  SolveInfo info_;

  void shift_qp_warm_start(size_t n, size_t nu, size_t rows);
  void shift_banded_warm_start(size_t n);
  void assemble_banded_qp(const std::vector<MpcProblem::StepJacobian>& jac);

  // Persistent solver + per-solve workspace: the controller runs every
  // simulated second, so the QP matrices, sensitivity stack and scratch
  // vectors are sized once and reused across steps (no steady-state
  // heap traffic).
  optim::QpSolver qp_solver_;
  optim::QpProblem qp_;
  // Banded-path twins of the above: stage-wise transcription of the
  // SAME constraint set (see assemble_banded_qp()), solved by the
  // block-tridiagonal O(H) solver.
  optim::LtvQpSolver ltv_solver_;
  optim::LtvQpProblem ltv_qp_;
  std::vector<optim::Matrix> sens_;  ///< control-to-state sensitivities
  optim::Matrix a_step_;             ///< 4x4 dynamics Jacobian of one step
  optim::Vector c_, g_z_, u_, g_u_, w0_;
  optim::Vector state_scale_;        ///< w-variable scales, 4 x (H+1)
  optim::Vector box_lo_, box_hi_;    ///< normalised control boxes (nu)
};

}  // namespace otem::core
