// otem_methodology.h — the paper's contribution: OTEM applied to the
// hybrid architecture with active battery cooling.
//
// Per plant step (Algorithm 1): read the next N predicted power
// requests from the forecast, solve the MPC (otem_controller.h), apply
// the first step's controls through the hybrid architecture and the
// cooling system, then advance the plant with the PLANT's own clamps —
// the controller never bypasses physics.
#pragma once

#include <memory>

#include "core/forecast.h"
#include "core/methodology.h"
#include "core/otem/otem_controller.h"
#include "core/system_spec.h"

namespace otem::core {

class OtemMethodology final : public Methodology {
 public:
  /// `forecast` models the prediction channel between route knowledge
  /// and the MPC (core/forecast.h); null means perfect prediction, the
  /// paper's evaluation setting.
  OtemMethodology(const SystemSpec& spec, MpcOptions mpc_options = {},
                  OtemSolverOptions solver_options = {},
                  std::unique_ptr<ForecastModel> forecast = nullptr);

  /// Bring-your-own solver variant (e.g. LtvOtemController).
  OtemMethodology(const SystemSpec& spec,
                  std::unique_ptr<ControllerIface> controller,
                  std::unique_ptr<ForecastModel> forecast = nullptr);

  std::string name() const override { return "otem"; }

  void reset(const PlantState& initial,
             const TimeSeries& power_forecast) override;

  StepRecord step(PlantState& state, double p_e_w, size_t k,
                  double dt) override;

  /// The shooting controller's diagnostics — only valid when the
  /// default controller is in use (throws otherwise).
  const OtemController& controller() const;
  const ForecastModel& forecast() const { return *forecast_; }

 private:
  hees::HybridArchitecture arch_;
  thermal::CoolingSystem cooling_;
  std::unique_ptr<ControllerIface> controller_;
  std::unique_ptr<ForecastModel> forecast_;
  double ambient_k_;
  double pump_w_;
};

}  // namespace otem::core
