// controller_iface.h — interface between the OTEM methodology (plant
// side) and an MPC solver strategy. Two implementations ship:
//   * OtemController       — single-shooting NLP, augmented Lagrangian
//                            (the production path),
//   * LtvOtemController    — iterated linearise-and-QP (LTV-SQP) on the
//                            ADMM QP solver (the classic alternative
//                            transcription; bench/ablation_solver
//                            compares them).
#pragma once

#include <vector>

#include "core/otem/mpc_problem.h"
#include "core/solve_diagnostics.h"

namespace otem::core {

class ControllerIface {
 public:
  virtual ~ControllerIface() = default;

  /// Clear warm starts; call at the start of a run.
  virtual void reset() = 0;

  /// Solve the window and return the first step's controls.
  virtual MpcProblem::Controls solve(
      const PlantState& state, const std::vector<double>& p_e_window) = 0;

  /// Control window length [steps].
  virtual size_t horizon() const = 0;

  /// Diagnostics of the most recent solve() (solve_time_us is stamped
  /// by the caller, which owns the wall clock around solve()).
  virtual SolveDiagnostics diagnostics() const { return {}; }
};

}  // namespace otem::core
