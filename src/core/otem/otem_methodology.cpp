#include "core/otem/otem_methodology.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "core/methodology_registry.h"
#include "core/otem/ltv_controller.h"

namespace otem::core {

OtemMethodology::OtemMethodology(const SystemSpec& spec,
                                 MpcOptions mpc_options,
                                 OtemSolverOptions solver_options,
                                 std::unique_ptr<ForecastModel> forecast)
    : OtemMethodology(spec,
                      std::make_unique<OtemController>(spec, mpc_options,
                                                       solver_options),
                      std::move(forecast)) {}

OtemMethodology::OtemMethodology(const SystemSpec& spec,
                                 std::unique_ptr<ControllerIface> controller,
                                 std::unique_ptr<ForecastModel> forecast)
    : arch_(spec.make_hybrid_arch()),
      cooling_(spec.make_cooling()),
      controller_(std::move(controller)),
      forecast_(forecast ? std::move(forecast)
                         : std::make_unique<PerfectForecast>()),
      ambient_k_(spec.ambient_k),
      pump_w_(spec.thermal.pump_power_w) {
  OTEM_REQUIRE(controller_ != nullptr, "OTEM needs a controller");
}

const OtemController& OtemMethodology::controller() const {
  const auto* shooting =
      dynamic_cast<const OtemController*>(controller_.get());
  OTEM_REQUIRE(shooting != nullptr,
               "diagnostics accessor requires the shooting controller");
  return *shooting;
}

void OtemMethodology::reset(const PlantState&,
                            const TimeSeries& power_forecast) {
  forecast_->reset(power_forecast);
  controller_->reset();
}

StepRecord OtemMethodology::step(PlantState& state, double p_e_w, size_t k,
                                 double dt) {
  StepRecord rec;
  rec.p_load_w = p_e_w;

  // Predicted requests for the control window (Algorithm 1 lines 11-12);
  // the window shrinks (pads with the last value) near the route end.
  const size_t n = controller_->horizon();
  std::vector<double> window = forecast_->window(k, n);
  if (window.empty()) window.push_back(p_e_w);

  // Two clock reads around a millisecond-scale solve: negligible cost,
  // and every step carries its true solver latency.
  const auto solve_begin = std::chrono::steady_clock::now();
  const MpcProblem::Controls u = controller_->solve(state, window);
  rec.solve = controller_->diagnostics();
  rec.solve.solve_time_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - solve_begin)
          .count();

  // Apply through the plant (lines 15-16). The pump runs whenever the
  // loop is active — always, for the actively-cooled architecture.
  const double p_cool = std::clamp(
      u.p_cooler_w, 0.0, cooling_.params().max_cooler_power_w);
  const double load = p_e_w + pump_w_ + p_cool;
  const double p_cap_bus = u.p_cap_bus_w;
  const double p_bat_bus = load - p_cap_bus;

  const hees::ArchStep arch =
      arch_.step(state.soc_percent, state.soe_percent, state.t_battery_k,
                 p_bat_bus, p_cap_bus, dt);

  const double t_inlet =
      cooling_.inlet_for_power(state.t_coolant_k, ambient_k_, p_cool);
  const thermal::ThermalState th = cooling_.step(
      {state.t_battery_k, state.t_coolant_k}, arch.q_bat_w, t_inlet, dt);

  state.t_battery_k = th.t_battery_k;
  state.t_coolant_k = th.t_coolant_k;
  state.soc_percent = arch.soc_next;
  state.soe_percent = arch.soe_next;

  rec.p_cooler_w = p_cool;
  rec.p_pump_w = pump_w_;
  rec.t_inlet_k = t_inlet;
  rec.i_bat_a = arch.i_bat_a;
  rec.i_cap_a = arch.i_cap_a;
  rec.q_bat_w = arch.q_bat_w;
  rec.e_bat_j = arch.e_bat_j;
  rec.e_cap_j = arch.e_cap_j;
  rec.e_cooling_j = (p_cool + pump_w_) * dt;
  rec.e_loss_j = arch.e_loss_j;
  rec.qloss_percent = arch.qloss_percent;
  rec.feasible = arch.feasible;
  rec.unmet_w = arch.unmet_bus_w;
  rec.state_after = state;
  return rec;
}

namespace detail {
void register_otem_methodologies(MethodologyRegistry& registry) {
  // "forecast" selects the prediction channel (core/forecast.h);
  // "perfect" is the paper's evaluation setting and the default.
  registry.add("otem", [](const SystemSpec& spec, const Config& cfg) {
    return std::make_unique<OtemMethodology>(
        spec, MpcOptions::from_config(cfg),
        OtemSolverOptions::from_config(cfg),
        make_forecast(cfg.get_string("forecast", "perfect")));
  });
  registry.add("otem-ltv", [](const SystemSpec& spec, const Config& cfg) {
    LtvOptions ltv;
    // A/B switch for the receding-horizon QP warm start (on by
    // default); docs/PERFORMANCE.md shows the comparison workflow.
    ltv.warm_start = cfg.get_bool("ltv.warm_start", true);
    // Linearise-solve-apply rounds per control step. 1 is the
    // real-time-iteration (RTI) setting the serve sessions run at: with
    // the receding-horizon warm start the incumbent plan is already
    // near-optimal, so a single relinearisation tracks the optimum at a
    // third of the per-step cost.
    const long rounds = cfg.get_long(
        "ltv.sqp_iterations", static_cast<long>(ltv.sqp_iterations));
    OTEM_REQUIRE(rounds >= 1, "ltv.sqp_iterations must be >= 1");
    ltv.sqp_iterations = static_cast<size_t>(rounds);
    // ADMM tolerance. The polish pass makes the accepted iterate
    // active-set-exact regardless, so eps only has to identify the
    // active set — loosening it is the latency knob the sub-millisecond
    // serve sessions turn (docs/PERFORMANCE.md shows the trade).
    const double eps = cfg.get_double("ltv.qp.eps", ltv.qp.eps_abs);
    OTEM_REQUIRE(eps > 0.0, "ltv.qp.eps must be positive");
    ltv.qp.eps_abs = eps;
    ltv.qp.eps_rel = eps;
    const long qp_iters = cfg.get_long(
        "ltv.qp.max_iterations", static_cast<long>(ltv.qp.max_iterations));
    OTEM_REQUIRE(qp_iters >= 1, "ltv.qp.max_iterations must be >= 1");
    ltv.qp.max_iterations = static_cast<size_t>(qp_iters);
    // KKT backend: "banded" (stage-structured O(H) solve, default) or
    // "dense" (condensed oracle path).
    const std::string kkt = cfg.get_string("ltv.kkt", "banded");
    OTEM_REQUIRE(kkt == "banded" || kkt == "dense",
                 "ltv.kkt must be 'banded' or 'dense'");
    ltv.qp.kkt_mode = kkt == "dense" ? optim::KktSolveMode::kDense
                                     : optim::KktSolveMode::kBanded;
    return std::make_unique<OtemMethodology>(
        spec,
        std::make_unique<LtvOtemController>(
            spec, MpcOptions::from_config(cfg), ltv),
        make_forecast(cfg.get_string("forecast", "perfect")));
  });
}
}  // namespace detail

}  // namespace otem::core
