#include "core/otem/mpc_problem.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace otem::core {

namespace {
// Constraint scale factors. These set the "exchange rate" between a
// constraint violation and the J-scale running cost inside the
// augmented Lagrangian: a violation of one scale unit (0.02 K of
// battery temperature, 0.2 % of SoC/SoE, 2 kW of battery power) counts
// as 1.0. Temperature needs the aggressive scale because the control
// authority of the cooler over T_b within one window is small (~mK per
// step) while cooling costs kilojoules — without it the penalty could
// never outbid the w1 energy term.
constexpr double kTempScale = 0.02;
constexpr double kSocScale = 0.2;
constexpr double kPowerScale = 2000.0;
// Floor on the discriminant of the battery power->current solve,
// relative to Voc^2; C6 penalties keep iterates away from this region.
constexpr double kDiscFloorFrac = 1e-4;
}  // namespace

MpcOptions MpcOptions::from_config(const Config& cfg) {
  MpcOptions o;
  o.horizon = static_cast<size_t>(
      cfg.get_long("otem.horizon", static_cast<long>(o.horizon)));
  o.dt = cfg.get_double("otem.dt", o.dt);
  o.weights.w1 = cfg.get_double("otem.w1", o.weights.w1);
  o.weights.w2 = cfg.get_double("otem.w2", o.weights.w2);
  o.weights.w3 = cfg.get_double("otem.w3", o.weights.w3);
  o.soc_min_percent = cfg.get_double("otem.soc_min", o.soc_min_percent);
  o.soe_min_percent = cfg.get_double("otem.soe_min", o.soe_min_percent);
  o.terminal_soe_weight =
      cfg.get_double("otem.terminal_soe_weight", o.terminal_soe_weight);
  o.terminal_aging_tail_s =
      cfg.get_double("otem.terminal_aging_tail_s", o.terminal_aging_tail_s);
  o.terminal_c_rate =
      cfg.get_double("otem.terminal_c_rate", o.terminal_c_rate);
  OTEM_REQUIRE(o.horizon >= 1, "MPC horizon must be at least 1");
  OTEM_REQUIRE(o.dt > 0.0, "MPC step must be positive");
  return o;
}

MpcProblem::MpcProblem(const SystemSpec& spec, MpcOptions options)
    : battery_(spec.make_battery()),
      ultracap_(spec.make_ultracap()),
      bat_conv_(spec.hybrid.battery_converter),
      cap_conv_(spec.hybrid.cap_converter),
      cooling_(spec.make_cooling()),
      tm_(cooling_.step_matrix(options.dt)),
      options_(options),
      ambient_k_(spec.ambient_k),
      pump_w_(spec.thermal.pump_power_w),
      max_battery_power_w_(spec.hybrid.max_battery_power_w),
      cap_power_scale_(spec.ultracap.max_power_w),
      pc_max_(spec.thermal.max_cooler_power_w),
      beta_soc_(100.0 * options.dt /
                (3600.0 * battery_.capacity_ah())),
      beta_soe_(100.0 * options.dt / ultracap_.energy_capacity_j()),
      entropic_k_(spec.battery.series * spec.battery.cell.dvoc_dtemp) {
  cache_.resize(options_.horizon);
  states_.resize(options_.horizon + 1);
  p_e_.assign(options_.horizon, 0.0);
}

void MpcProblem::set_window(const PlantState& x0,
                            const std::vector<double>& p_e) {
  x0_ = x0;
  for (size_t k = 0; k < options_.horizon; ++k) {
    if (k < p_e.size())
      p_e_[k] = p_e[k];
    else
      p_e_[k] = p_e.empty() ? 0.0 : p_e.back();
  }

  if (options_.terminal_c_rate > 0.0) {
    tail_c_rate_ = options_.terminal_c_rate;
  } else {
    // Adaptive tail stress: mean positive (discharge) power of the
    // window, converted to a cell C-rate at the current pack voltage.
    double p_sum = 0.0;
    for (double p : p_e_) p_sum += std::max(p, 0.0);
    const double p_mean = p_sum / static_cast<double>(options_.horizon);
    const double i_est =
        p_mean / std::max(battery_.open_circuit_voltage(x0.soc_percent),
                          1.0);
    tail_c_rate_ = i_est / (battery_.params().parallel *
                            battery_.params().cell.capacity_ah);
  }
}

optim::Box MpcProblem::bounds() const {
  optim::Box box;
  box.lo.assign(dim(), 0.0);
  box.hi.assign(dim(), 1.0);
  return box;
}

MpcProblem::Controls MpcProblem::decode(const optim::Vector& z,
                                        size_t k) const {
  OTEM_REQUIRE(k < options_.horizon, "decode index out of range");
  Controls c;
  c.p_cap_bus_w = (2.0 * z[2 * k] - 1.0) * cap_power_scale_;
  c.p_cooler_w = z[2 * k + 1] * pc_max_;
  return c;
}

void MpcProblem::encode(size_t k, const Controls& controls,
                        optim::Vector& z) const {
  OTEM_REQUIRE(z.size() == dim(), "encode target size mismatch");
  OTEM_REQUIRE(k < options_.horizon, "encode index out of range");
  z[2 * k] = std::clamp(
      (controls.p_cap_bus_w / cap_power_scale_ + 1.0) / 2.0, 0.0, 1.0);
  z[2 * k + 1] = std::clamp(controls.p_cooler_w / pc_max_, 0.0, 1.0);
}

double MpcProblem::evaluate(const optim::Vector& z, optim::Vector& c_out) {
  const size_t n = options_.horizon;
  OTEM_REQUIRE(z.size() == 2 * n, "MPC decision vector size mismatch");
  c_out.assign(num_constraints(), 0.0);

  const double dt = options_.dt;
  const MpcWeights& w = options_.weights;
  const battery::CellParams& cell = battery_.params().cell;
  const double cell_cap = cell.capacity_ah * battery_.params().parallel;
  const double delta2 = options_.current_smoothing_a *
                        options_.current_smoothing_a;
  const double eps_passive = cooling_.params().passive_effectiveness;
  const double gamma = cooling_.pulldown_per_watt();
  const double t_min_inlet = cooling_.params().min_inlet_temp_k;

  cost_ = CostBreakdown{};
  PlantState x = x0_;
  states_[0] = x;

  for (size_t k = 0; k < n; ++k) {
    StepCache& s = cache_[k];
    s.tb = x.t_battery_k;
    s.tc = x.t_coolant_k;
    s.soc = x.soc_percent;
    s.soe = x.soe_percent;
    s.u_cap = (2.0 * z[2 * k] - 1.0) * cap_power_scale_;
    s.u_pc = z[2 * k + 1] * pc_max_;

    // --- ultracapacitor branch ----------------------------------------
    const double soe_eff = std::clamp(s.soe, 0.1, 100.0);
    const double s_sqrt = std::sqrt(soe_eff / 100.0);
    const double v_cap = ultracap_.params().rated_voltage * s_sqrt;
    s.dv_dsoe = (s.soe > 0.1 && s.soe < 100.0)
                    ? ultracap_.params().rated_voltage / (200.0 * s_sqrt)
                    : 0.0;
    s.eta_c = cap_conv_.efficiency(v_cap);
    s.deta_c_dv = cap_conv_.efficiency_dv(v_cap);
    if (s.u_cap >= 0.0) {
      s.p_cs = s.u_cap / s.eta_c;
      s.dpcs_du = 1.0 / s.eta_c;
      s.dpcs_deta = -s.u_cap / (s.eta_c * s.eta_c);
    } else {
      s.p_cs = s.u_cap * s.eta_c;
      s.dpcs_du = s.eta_c;
      s.dpcs_deta = s.u_cap;
    }

    // --- bus balance ------------------------------------------------------
    const double load = p_e_[k] + pump_w_ + s.u_pc;
    const double p_bb = load - s.u_cap;

    // --- battery branch ---------------------------------------------------
    s.v_b = battery_.open_circuit_voltage(s.soc);
    s.dvb_dsoc = battery_.open_circuit_voltage_dsoc(s.soc);
    const double eta_b = bat_conv_.efficiency(s.v_b);
    s.deta_b_dv = bat_conv_.efficiency_dv(s.v_b);
    if (p_bb >= 0.0) {
      s.p_bs = p_bb / eta_b;
      s.dpbs_dpbb = 1.0 / eta_b;
      s.dpbs_deta = -p_bb / (eta_b * eta_b);
    } else {
      s.p_bs = p_bb * eta_b;
      s.dpbs_dpbb = eta_b;
      s.dpbs_deta = p_bb;
    }

    s.r = battery_.internal_resistance(s.soc, s.tb);
    s.dr_dsoc = battery_.internal_resistance_dsoc(s.soc, s.tb);
    s.dr_dtb = battery_.internal_resistance_dtemp(s.soc, s.tb);

    const double disc = s.v_b * s.v_b - 4.0 * s.r * s.p_bs;
    const double disc_floor = kDiscFloorFrac * s.v_b * s.v_b;
    double sq, dsq_ddisc;
    if (disc > disc_floor) {
      sq = std::sqrt(disc);
      dsq_ddisc = 0.5 / sq;
    } else {
      sq = std::sqrt(disc_floor);
      dsq_ddisc = 0.0;  // flat in the clamped (infeasible) region
    }
    s.i = (s.v_b - sq) / (2.0 * s.r);
    s.di_dvb = (1.0 - dsq_ddisc * 2.0 * s.v_b) / (2.0 * s.r);
    s.di_dpbs = 2.0 * dsq_ddisc;
    s.di_dr = 2.0 * s.p_bs * dsq_ddisc / s.r - s.i / s.r;

    // --- heat and ageing ---------------------------------------------------
    const double q = s.i * s.i * s.r + s.i * s.tb * entropic_k_;
    // Eq. 5 counts DISCHARGE current only; i_pos is a smooth positive
    // part, i_pos = (i + sqrt(i^2 + delta^2)) / 2, so the gradient
    // stays defined through zero current.
    const double i_mag = std::sqrt(s.i * s.i + delta2);
    const double i_pos = 0.5 * (s.i + i_mag);
    const double di_pos = 0.5 * (1.0 + s.i / i_mag);
    const double c_rate = i_pos / cell_cap;
    const double arr =
        std::exp(-cell.l2 / (constants::kGasConstant * s.tb));
    s.qloss = cell.l1 * arr * std::pow(c_rate, cell.l3) * dt;
    s.dqloss_dtb =
        s.qloss * cell.l2 / (constants::kGasConstant * s.tb * s.tb);
    s.dqloss_di = s.qloss * cell.l3 * di_pos / i_pos;

    // --- thermal update (Eq. 17) ------------------------------------------
    const double ti_raw =
        (1.0 - eps_passive) * s.tc + eps_passive * ambient_k_ -
        gamma * s.u_pc;
    const double ti = std::max(ti_raw, t_min_inlet);
    s.ti_clamped = ti_raw < t_min_inlet;

    const double tb_next =
        tm_.m00 * s.tb + tm_.m01 * s.tc + tm_.bi0 * ti + tm_.bq0 * q;
    const double tc_next =
        tm_.m10 * s.tb + tm_.m11 * s.tc + tm_.bi1 * ti + tm_.bq1 * q;
    const double soc_next = s.soc - beta_soc_ * s.i;
    const double soe_next = s.soe - beta_soe_ * s.p_cs;

    // --- cost (Eq. 19) -----------------------------------------------------
    cost_.cooler += w.w1 * s.u_pc * dt;
    cost_.aging += w.w2 * s.qloss;
    cost_.energy += w.w3 * (s.v_b * s.i + s.p_cs) * dt;

    // --- constraints C1, C4, C5, C6 -----------------------------------------
    double* c = &c_out[kConstraintsPerStep * k];
    const thermal::CoolingParams& tp = cooling_.params();
    c[0] = (tb_next - tp.max_battery_temp_k) / kTempScale;
    c[1] = (tp.min_battery_temp_k - tb_next) / kTempScale;
    c[2] = (options_.soc_min_percent - soc_next) / kSocScale;
    c[3] = (soc_next - 100.0) / kSocScale;
    c[4] = (options_.soe_min_percent - soe_next) / kSocScale;
    c[5] = (soe_next - 100.0) / kSocScale;
    c[6] = (s.p_bs - max_battery_power_w_) / kPowerScale;
    c[7] = (-s.p_bs - max_battery_power_w_) / kPowerScale;

    x.t_battery_k = tb_next;
    x.t_coolant_k = tc_next;
    x.soc_percent = soc_next;
    x.soe_percent = soe_next;
    states_[k + 1] = x;
  }

  cost_.terminal = 0.0;
  if (options_.terminal_soe_weight > 0.0) {
    cost_.terminal += options_.terminal_soe_weight *
                      (100.0 - x.soe_percent) / 100.0 *
                      ultracap_.energy_capacity_j();
  }
  if (options_.terminal_aging_tail_s > 0.0) {
    // Aging cost-to-go at the terminal temperature (see MpcOptions).
    const double rate =
        cell.l1 *
        std::exp(-cell.l2 / (constants::kGasConstant * x.t_battery_k)) *
        std::pow(std::max(tail_c_rate_, 1e-6), cell.l3);
    cost_.terminal +=
        w.w2 * rate * options_.terminal_aging_tail_s;
  }
  return cost_.total();
}

std::vector<MpcProblem::StepJacobian> MpcProblem::linearize() const {
  const double eps_passive = cooling_.params().passive_effectiveness;
  const double gamma = cooling_.pulldown_per_watt();
  std::vector<StepJacobian> out(options_.horizon);

  for (size_t k = 0; k < options_.horizon; ++k) {
    const StepCache& s = cache_[k];
    StepJacobian& j = out[k];

    // Battery current partials w.r.t. state and PHYSICAL controls.
    const double dpbs_dsoc =
        s.dpbs_deta * s.deta_b_dv * s.dvb_dsoc;
    const double di_dsoc = s.di_dvb * s.dvb_dsoc + s.di_dr * s.dr_dsoc +
                           s.di_dpbs * dpbs_dsoc;
    const double di_dtb = s.di_dr * s.dr_dtb;
    const double di_ducap = -s.di_dpbs * s.dpbs_dpbb;
    const double di_dupc = s.di_dpbs * s.dpbs_dpbb;

    // Heat partials: Q = I^2 R + I T_b kappa.
    const double common = 2.0 * s.i * s.r + s.tb * entropic_k_;
    const double dq_dtb =
        common * di_dtb + s.i * s.i * s.dr_dtb + s.i * entropic_k_;
    const double dq_dsoc = common * di_dsoc + s.i * s.i * s.dr_dsoc;
    const double dq_ducap = common * di_ducap;
    const double dq_dupc = common * di_dupc;

    // Inlet partials (zero in the refrigerant-floor clamp).
    const double dti_dtc = s.ti_clamped ? 0.0 : 1.0 - eps_passive;
    const double dti_dupc = s.ti_clamped ? 0.0 : -gamma;

    // T_b+ row.
    j.a[0][0] = tm_.m00 + tm_.bq0 * dq_dtb;
    j.a[0][1] = tm_.m01 + tm_.bi0 * dti_dtc;
    j.a[0][2] = tm_.bq0 * dq_dsoc;
    j.b[0][0] = tm_.bq0 * dq_ducap;
    j.b[0][1] = tm_.bi0 * dti_dupc + tm_.bq0 * dq_dupc;
    // T_c+ row.
    j.a[1][0] = tm_.m10 + tm_.bq1 * dq_dtb;
    j.a[1][1] = tm_.m11 + tm_.bi1 * dti_dtc;
    j.a[1][2] = tm_.bq1 * dq_dsoc;
    j.b[1][0] = tm_.bq1 * dq_ducap;
    j.b[1][1] = tm_.bi1 * dti_dupc + tm_.bq1 * dq_dupc;
    // SoC+ row.
    j.a[2][0] = -beta_soc_ * di_dtb;
    j.a[2][2] = 1.0 - beta_soc_ * di_dsoc;
    j.b[2][0] = -beta_soc_ * di_ducap;
    j.b[2][1] = -beta_soc_ * di_dupc;
    // SoE+ row.
    j.a[3][3] =
        1.0 - beta_soe_ * s.dpcs_deta * s.deta_c_dv * s.dv_dsoe;
    j.b[3][0] = -beta_soe_ * s.dpcs_du;

    // C6 row: battery storage-side power.
    j.p_bs = s.p_bs;
    j.dpbs_du[0] = -s.dpbs_dpbb;
    j.dpbs_du[1] = s.dpbs_dpbb;
    j.dpbs_dx[2] = dpbs_dsoc;
  }
  return out;
}

void MpcProblem::gradient(const optim::Vector& z, const optim::Vector& w,
                          optim::Vector& grad_out) {
  const size_t n = options_.horizon;
  OTEM_REQUIRE(z.size() == 2 * n, "MPC decision vector size mismatch");
  OTEM_REQUIRE(w.size() == num_constraints(),
               "MPC constraint weight size mismatch");
  grad_out.assign(2 * n, 0.0);

  const double dt = options_.dt;
  const MpcWeights& wt = options_.weights;
  const double eps_passive = cooling_.params().passive_effectiveness;
  const double gamma = cooling_.pulldown_per_watt();

  // Adjoints of the state downstream of the current step.
  double a_tb = 0.0, a_tc = 0.0, a_soc = 0.0, a_soe = 0.0;
  if (options_.terminal_soe_weight > 0.0) {
    a_soe -= options_.terminal_soe_weight * ultracap_.energy_capacity_j() /
             100.0;
  }
  if (options_.terminal_aging_tail_s > 0.0) {
    const battery::CellParams& cell = battery_.params().cell;
    const double tb_n = states_[n].t_battery_k;
    const double rate =
        cell.l1 *
        std::exp(-cell.l2 / (constants::kGasConstant * tb_n)) *
        std::pow(std::max(tail_c_rate_, 1e-6), cell.l3);
    // d/dT exp(-l2/(R T)) = exp(...) * l2 / (R T^2)
    a_tb += wt.w2 * rate * options_.terminal_aging_tail_s * cell.l2 /
            (constants::kGasConstant * tb_n * tb_n);
  }

  for (size_t kk = n; kk-- > 0;) {
    const StepCache& s = cache_[kk];
    const double* cw = &w[kConstraintsPerStep * kk];

    // Constraint contributions on the step's OUTPUT state and p_bs.
    a_tb += (cw[0] - cw[1]) / kTempScale;
    a_soc += (cw[3] - cw[2]) / kSocScale;
    a_soe += (cw[5] - cw[4]) / kSocScale;
    double g_pbs = (cw[6] - cw[7]) / kPowerScale;

    // Dynamics.
    const double g_q = a_tb * tm_.bq0 + a_tc * tm_.bq1;
    const double g_ti = a_tb * tm_.bi0 + a_tc * tm_.bi1;
    double n_tb = a_tb * tm_.m00 + a_tc * tm_.m10;
    double n_tc = a_tb * tm_.m01 + a_tc * tm_.m11;
    double n_soc = a_soc;
    double n_soe = a_soe;
    double g_i = -a_soc * beta_soc_;
    double g_pcs = -a_soe * beta_soe_;

    // Inlet temperature.
    double g_upc = 0.0;
    if (!s.ti_clamped) {
      n_tc += g_ti * (1.0 - eps_passive);
      g_upc -= gamma * g_ti;
    }

    // Running cost at this step.
    g_upc += wt.w1 * dt;
    const double g_qloss = wt.w2;
    g_i += wt.w3 * s.v_b * dt;
    double g_vb = wt.w3 * s.i * dt;
    g_pcs += wt.w3 * dt;

    // Ageing.
    n_tb += g_qloss * s.dqloss_dtb;
    g_i += g_qloss * s.dqloss_di;

    // Heat generation q = i^2 r + i tb kappa.
    g_i += g_q * (2.0 * s.i * s.r + s.tb * entropic_k_);
    double g_r = g_q * s.i * s.i;
    n_tb += g_q * s.i * entropic_k_;

    // Battery current solve.
    g_vb += g_i * s.di_dvb;
    g_r += g_i * s.di_dr;
    g_pbs += g_i * s.di_dpbs;

    // Internal resistance.
    n_soc += g_r * s.dr_dsoc;
    n_tb += g_r * s.dr_dtb;

    // Battery converter p_bs(p_bb, eta_b(v_b)).
    const double g_pbb = g_pbs * s.dpbs_dpbb;
    const double g_etab = g_pbs * s.dpbs_deta;
    g_vb += g_etab * s.deta_b_dv;

    // Bus balance p_bb = P_e + pump + u_pc - u_cap.
    g_upc += g_pbb;
    double g_ucap = -g_pbb;

    // Open-circuit voltage.
    n_soc += g_vb * s.dvb_dsoc;

    // Ultracap converter p_cs(u_cap, eta_c(v_cap(soe))).
    g_ucap += g_pcs * s.dpcs_du;
    const double g_etac = g_pcs * s.dpcs_deta;
    n_soe += g_etac * s.deta_c_dv * s.dv_dsoe;

    // Map to the normalised decision space.
    grad_out[2 * kk] = g_ucap * 2.0 * cap_power_scale_;
    grad_out[2 * kk + 1] = g_upc * pc_max_;

    a_tb = n_tb;
    a_tc = n_tc;
    a_soc = n_soc;
    a_soe = n_soe;
  }
}

}  // namespace otem::core
