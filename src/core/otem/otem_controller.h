// otem_controller.h — receding-horizon driver for the OTEM MPC
// (paper Algorithm 1, lines 10-22).
//
// At each plant step the controller installs the current state and the
// next N predicted power requests into the MpcProblem, solves the
// constrained NLP with the augmented-Lagrangian solver (warm-started
// from the previous solution shifted by one step — the standard MPC
// warm start), and returns the first step's controls to apply.
#pragma once

#include <vector>

#include "core/otem/controller_iface.h"
#include "core/otem/mpc_problem.h"
#include "optim/augmented_lagrangian.h"

namespace otem::core {

struct OtemSolverOptions {
  optim::AugmentedLagrangianOptions al;

  OtemSolverOptions() {
    // Tuned for the 2N-dimensional shooting problem: Adam explores, a
    // short L-BFGS polish sharpens, few outer multiplier rounds. The
    // penalty schedule is aggressive because the constraint scales in
    // mpc_problem.cpp put one scale-unit of violation at 0.02 K / 0.2 %
    // — the penalty must dominate the J-scale running cost quickly.
    al.adam.max_iterations = 120;
    al.adam.learning_rate = 0.04;
    al.lbfgs.max_iterations = 25;
    al.max_outer_iterations = 4;
    al.initial_penalty = 500.0;
    al.penalty_growth = 8.0;
    al.max_penalty = 1e9;
    al.constraint_tolerance = 0.5;  // scaled units: 10 mK / 0.1 % / 1 kW
  }

  /// Read overrides with prefix "otem.solver." from cfg.
  static OtemSolverOptions from_config(const Config& cfg);
};

class OtemController final : public ControllerIface {
 public:
  OtemController(const SystemSpec& spec, MpcOptions mpc_options,
                 OtemSolverOptions solver_options = {});

  const MpcOptions& mpc_options() const { return problem_.options(); }
  size_t horizon() const override { return problem_.options().horizon; }

  /// Diagnostics of the most recent solve.
  struct SolveInfo {
    double cost = 0.0;
    double constraint_violation = 0.0;
    size_t iterations = 0;
    bool converged = false;
    bool fallback = false;  ///< cold start (no usable warm start)
    MpcProblem::CostBreakdown breakdown;
  };

  /// Clear the warm start (call at the beginning of a run).
  void reset() override;

  /// Solve the window starting from `state` with predicted requests
  /// `p_e_window` (may be shorter than the horizon near the route end)
  /// and return the controls for the first step.
  MpcProblem::Controls solve(
      const PlantState& state,
      const std::vector<double>& p_e_window) override;

  const SolveInfo& last_solve() const { return info_; }

  SolveDiagnostics diagnostics() const override;

  /// Predicted state trajectory of the accepted solution.
  const std::vector<PlantState>& predicted_states() const {
    return problem_.predicted_states();
  }

 private:
  MpcProblem problem_;
  OtemSolverOptions solver_;
  optim::Vector warm_;         ///< previous solution, shifted
  bool have_warm_ = false;
  SolveInfo info_;
};

}  // namespace otem::core
