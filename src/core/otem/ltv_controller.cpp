#include "core/otem/ltv_controller.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "obs/trace.h"

namespace otem::core {

LtvOtemController::LtvOtemController(const SystemSpec& spec,
                                     MpcOptions mpc_options,
                                     LtvOptions options)
    : problem_(spec, mpc_options),
      options_(options),
      cap_power_max_(spec.ultracap.max_power_w),
      pc_max_(spec.thermal.max_cooler_power_w),
      max_battery_power_w_(spec.hybrid.max_battery_power_w),
      t_max_k_(spec.thermal.max_battery_temp_k),
      t_min_k_(spec.thermal.min_battery_temp_k) {}

void LtvOtemController::reset() {
  have_warm_ = false;
  warm_z_.clear();
  have_qp_warm_ = false;
  qp_warm_ = optim::QpWarmStart{};
  info_ = SolveInfo{};
}

/// Advance the stored QP iterates one control period — the same
/// shift-by-one policy the incumbent plan uses. The primal lives in
/// (du_cap, du_cool) pairs per step; the dual has nu box rows followed
/// by 4 linearised-constraint rows per step. The terminal entries keep
/// the previous horizon-end values.
void LtvOtemController::shift_qp_warm_start(size_t n, size_t nu,
                                            size_t rows) {
  optim::Vector& x = qp_warm_.x;
  optim::Vector& y = qp_warm_.y;
  if (x.size() != nu || y.size() != rows) {
    have_qp_warm_ = false;  // shape changed: honest cold start
    return;
  }
  for (size_t i = 0; i + 2 < nu; ++i) {
    x[i] = x[i + 2];
    y[i] = y[i + 2];
  }
  for (size_t k = 0; k + 1 < n; ++k)
    for (size_t r = 0; r < 4; ++r)
      y[nu + 4 * k + r] = y[nu + 4 * (k + 1) + r];
}

/// Banded twin of shift_qp_warm_start(): iterates live in 6-variable /
/// 11-row stage blocks, so the one-period advance moves whole stages.
/// The terminal stage keeps the previous horizon-end values.
void LtvOtemController::shift_banded_warm_start(size_t n) {
  optim::Vector& x = qp_warm_.x;
  optim::Vector& y = qp_warm_.y;
  if (x.size() != optim::kLtvStageVars * n ||
      y.size() != optim::kLtvStageRows * n) {
    have_qp_warm_ = false;  // shape (or KKT mode) changed: cold start
    return;
  }
  for (size_t k = 0; k + 1 < n; ++k) {
    for (size_t j = 0; j < optim::kLtvStageVars; ++j)
      x[optim::kLtvStageVars * k + j] =
          x[optim::kLtvStageVars * (k + 1) + j];
    for (size_t r = 0; r < optim::kLtvStageRows; ++r)
      y[optim::kLtvStageRows * k + r] =
          y[optim::kLtvStageRows * (k + 1) + r];
  }
}

/// Stage-wise transcription of the round's QP — the same constraint set
/// as the dense assembly in solve() (boxes, linearised state bounds,
/// battery-power rows, identical equilibration scales and infeasibility
/// softening), but keeping the scaled state deviations
///   w_{k+1} = (x_{k+1} - x*_{k+1}) / s_{k+1}
/// as decision variables tied to the controls by per-stage dynamics
/// equality rows. That keeps the KKT matrix block-tridiagonal, which is
/// what LtvQpSolver factorises in O(H). The two transcriptions have the
/// same minimiser in the controls (tests/test_banded_kkt.cpp pins this).
void LtvOtemController::assemble_banded_qp(
    const std::vector<MpcProblem::StepJacobian>& jac) {
  const size_t n = problem_.options().horizon;
  const size_t nu = 2 * n;
  const auto& xs = problem_.predicted_states();
  const double T = options_.trust_region_w;

  ltv_qp_.stages.assign(n, optim::LtvQpStage{});

  // Per-state control-authority scales s_{k,r} = max_col |T S_k(r,col)|
  // — exactly the dense path's row-equilibration factor for the bound
  // row on state r at step k. A vanishing scale means the controls
  // cannot move that state (its bound row is dropped, like the dense
  // degenerate-row case); the w variable then stays in raw units.
  state_scale_.assign(4 * (n + 1), 0.0);
  for (size_t k = 1; k <= n; ++k) {
    const optim::Matrix& s = sens_[k];
    for (size_t r = 0; r < 4; ++r) {
      double m = 0.0;
      for (size_t col = 0; col < nu; ++col)
        m = std::max(m, std::abs(T * s(r, col)));
      state_scale_[4 * k + r] = m;
    }
  }
  auto scale_of = [&](size_t k, size_t r) {
    const double s = state_scale_[4 * k + r];
    return s < 1e-9 ? 1.0 : s;
  };

  // Normalised control boxes, needed up front: the reach-based
  // softening of every row scans all of them.
  box_lo_.resize(nu);
  box_hi_.resize(nu);
  for (size_t i = 0; i < nu; ++i) {
    const bool is_cap = (i % 2 == 0);
    const double lo = is_cap ? -cap_power_max_ : 0.0;
    const double hi = is_cap ? cap_power_max_ : pc_max_;
    box_lo_[i] = std::max((lo - u_[i]) / T, -1.0);
    box_hi_[i] = std::min((hi - u_[i]) / T, 1.0);
    if (box_lo_[i] > box_hi_[i]) box_lo_[i] = box_hi_[i];
  }

  // Soften a row given its condensed (per-column, equilibrated)
  // coefficients: clip the bounds to the best reachable value plus 5 %
  // slack, as in the dense assembly. `coeff(col)` must return the same
  // values the dense path would carry in A's row.
  auto soften = [&](auto&& coeff, double& lo, double& hi) {
    if (lo > hi) lo = hi;
    double reach_min = 0.0, reach_max = 0.0;
    for (size_t col = 0; col < nu; ++col) {
      const double a = coeff(col);
      reach_min += std::min(a * box_lo_[col], a * box_hi_[col]);
      reach_max += std::max(a * box_lo_[col], a * box_hi_[col]);
    }
    const double slack = 0.05 * (reach_max - reach_min);
    if (hi < reach_min + slack) hi = reach_min + slack;
    if (lo > reach_max - slack) lo = reach_max - slack;
    if (lo > hi) lo = hi;
  };

  for (size_t k = 0; k < n; ++k) {
    optim::LtvQpStage& st = ltv_qp_.stages[k];
    const auto& jk = jac[k];

    // Cost + control boxes: same numbers as dense columns 2k, 2k+1.
    for (size_t j = 0; j < 2; ++j) {
      const size_t col = 2 * k + j;
      st.q[j] = g_u_[col] * T;
      st.p[j] = std::max(std::abs(g_u_[col]) * T,
                         options_.regularisation_floor * T * T);
      st.v_lo[j] = box_lo_[col];
      st.v_hi[j] = box_hi_[col];
    }

    // Dynamics equality rows, scaled per target state:
    //   w_{k+1,r} = (A_k diag(s_k) w_k + T B_k v_k)(r) / s_{k+1,r}.
    // Stage 0 has no w_0 (x_0 is the measured state): aw stays zero.
    for (size_t r = 0; r < 4; ++r) {
      const double inv = 1.0 / scale_of(k + 1, r);
      st.ew[r] = 1.0;
      if (k > 0)
        for (size_t m = 0; m < 4; ++m)
          st.aw.m[r][m] = jk.a[r][m] * scale_of(k, m) * inv;
      for (size_t j = 0; j < 2; ++j)
        st.bv.m[r][j] = T * jk.b[r][j] * inv;
    }

    // State bound rows on w_{k+1}: T_b (r=0), SoC (r=2), SoE (r=3);
    // T_c carries no bound. Bounds and softening match the dense rows
    // exactly — the dense equilibration scale IS s_{k+1,r}.
    st.x_lo[1] = -optim::kLtvInf;
    st.x_hi[1] = optim::kLtvInf;
    const double bound_lo[4] = {t_min_k_, 0.0,
                                problem_.options().soc_min_percent,
                                problem_.options().soe_min_percent};
    const double bound_hi[4] = {t_max_k_, 0.0, 100.0, 100.0};
    const double x_star[4] = {xs[k + 1].t_battery_k, 0.0,
                              xs[k + 1].soc_percent, xs[k + 1].soe_percent};
    for (size_t r = 0; r < 4; ++r) {
      if (r == 1) continue;
      const double s = state_scale_[4 * (k + 1) + r];
      if (s < 1e-9) {
        st.x_lo[r] = -optim::kLtvInf;  // no control authority: drop
        st.x_hi[r] = optim::kLtvInf;
        continue;
      }
      st.x_lo[r] = (bound_lo[r] - x_star[r]) / s;
      st.x_hi[r] = (bound_hi[r] - x_star[r]) / s;
      const optim::Matrix& s1 = sens_[k + 1];
      soften([&](size_t col) { return T * s1(r, col) / s; }, st.x_lo[r],
             st.x_hi[r]);
    }

    // Battery-power row (C6) over this stage's variables:
    //   dpbs_dx . diag(s_k) w_k + T dpbs_du . v_k in [-P, P] - p_bs,
    // equilibrated by its own max-abs coefficient (row scaling is
    // feasibility-neutral; softening is scale-invariant).
    double m_b = 0.0;
    for (size_t j = 0; j < 2; ++j)
      m_b = std::max(m_b, std::abs(T * jk.dpbs_du[j]));
    if (k > 0)
      for (size_t m = 0; m < 4; ++m)
        m_b = std::max(m_b, std::abs(jk.dpbs_dx[m] * scale_of(k, m)));
    if (m_b < 1e-9) {
      st.b_lo = -optim::kLtvInf;
      st.b_hi = optim::kLtvInf;
    } else {
      const double inv = 1.0 / m_b;
      for (size_t j = 0; j < 2; ++j) st.cv[j] = T * jk.dpbs_du[j] * inv;
      if (k > 0)
        for (size_t m = 0; m < 4; ++m)
          st.cw[m] = jk.dpbs_dx[m] * scale_of(k, m) * inv;
      st.b_lo = (-max_battery_power_w_ - jk.p_bs) * inv;
      st.b_hi = (max_battery_power_w_ - jk.p_bs) * inv;
      const optim::Matrix& s0 = sens_[k];
      soften(
          [&](size_t col) {
            double v = 0.0;
            for (size_t m = 0; m < 4; ++m) v += jk.dpbs_dx[m] * s0(m, col);
            v *= T;
            if (col == 2 * k) v += T * jk.dpbs_du[0];
            if (col == 2 * k + 1) v += T * jk.dpbs_du[1];
            return v * inv;
          },
          st.b_lo, st.b_hi);
    }
  }
}

MpcProblem::Controls LtvOtemController::solve(
    const PlantState& state, const std::vector<double>& p_e_window) {
  const obs::TraceSpan solve_span("ltv.solve");
  problem_.set_window(state, p_e_window);
  const size_t n = problem_.options().horizon;
  const size_t nu = 2 * n;

  // Incumbent plan: shifted previous solution or "all off".
  optim::Vector z(nu);
  info_ = SolveInfo{};
  info_.fallback = !(have_warm_ && warm_z_.size() == nu);
  if (have_warm_ && warm_z_.size() == nu) {
    for (size_t i = 0; i + 2 < nu; ++i) z[i] = warm_z_[i + 2];
    z[nu - 2] = warm_z_[nu - 2];
    z[nu - 1] = warm_z_[nu - 1];
  } else {
    for (size_t k = 0; k < n; ++k) {
      z[2 * k] = 0.5;  // 0 W ultracap
      z[2 * k + 1] = 0.0;
    }
  }

  c_.assign(problem_.num_constraints(), 0.0);
  w0_.assign(problem_.num_constraints(), 0.0);
  g_z_.assign(nu, 0.0);

  // QP warm start for the first round of this step: the previous
  // step's terminal iterates, advanced one period. Later rounds reuse
  // the immediately preceding round's iterates unshifted (same time
  // alignment).
  const bool banded =
      options_.qp.kkt_mode == optim::KktSolveMode::kBanded;
  const size_t rows = nu + 4 * n;  // boxes + (tb, soc, soe, p_bs) / step
  if (options_.warm_start && have_qp_warm_) {
    if (banded)
      shift_banded_warm_start(n);
    else
      shift_qp_warm_start(n, nu, rows);
  }

  // Size the persistent sensitivity stack once per horizon/width.
  if (sens_.size() != n + 1 || sens_[0].rows() != 4 ||
      sens_[0].cols() != nu) {
    sens_.assign(n + 1, optim::Matrix(4, nu));
  }

  for (size_t round = 0; round < options_.sqp_iterations; ++round) {
    const obs::TraceSpan round_span("ltv.sqp_round");
    info_.cost = problem_.evaluate(z, c_);
    problem_.gradient(z, w0_, g_z_);
    const auto jac = problem_.linearize();
    const auto& xs = problem_.predicted_states();

    // Physical incumbent controls and cost gradient w.r.t. them.
    u_.assign(nu, 0.0);
    g_u_.assign(nu, 0.0);
    for (size_t k = 0; k < n; ++k) {
      const auto uk = problem_.decode(z, k);
      u_[2 * k] = uk.p_cap_bus_w;
      u_[2 * k + 1] = uk.p_cooler_w;
      g_u_[2 * k] = g_z_[2 * k] / (2.0 * cap_power_max_);
      g_u_[2 * k + 1] = g_z_[2 * k + 1] / pc_max_;
    }

    // Control-to-state sensitivities S_k (4 x nu), built forward:
    // S_{k+1} = A_k S_k + B_k at columns (2k, 2k+1).
    sens_[0].reshape(4, nu);  // zero the base; later stages are overwritten
    for (size_t k = 0; k < n; ++k) {
      const auto& jk = jac[k];
      a_step_.reshape(4, 4);
      for (size_t r = 0; r < 4; ++r)
        for (size_t m = 0; m < 4; ++m) a_step_(r, m) = jk.a[r][m];
      optim::Matrix& next = sens_[k + 1];
      a_step_.multiply_into(sens_[k], next);
      for (size_t r = 0; r < 4; ++r) {
        next(r, 2 * k) += jk.b[r][0];
        next(r, 2 * k + 1) += jk.b[r][1];
      }
    }

    // --- assemble + solve the round's QP ---------------------------------
    // Decision variables are du / T with T = trust_region_w, so every
    // variable lives in [-1, 1] and ADMM sees a well-scaled problem.
    // kBanded uses the stage-wise transcription of the same constraint
    // set; kDense condenses the states away (see header comment).
    optim::QpResult sol;
    if (banded) {
      assemble_banded_qp(jac);
      sol = options_.warm_start && have_qp_warm_
                ? ltv_solver_.solve(ltv_qp_, options_.qp, qp_warm_)
                : ltv_solver_.solve(ltv_qp_, options_.qp);
    } else {
    const double T = options_.trust_region_w;
    optim::QpProblem& qp = qp_;
    qp.q.assign(nu, 0.0);
    qp.p.reshape(nu, nu);
    for (size_t i = 0; i < nu; ++i) {
      qp.q[i] = g_u_[i] * T;
      qp.p(i, i) = std::max(std::abs(g_u_[i]) * T,
                            options_.regularisation_floor * T * T);
    }
    qp.a.reshape(rows, nu);
    qp.l.assign(rows, 0.0);
    qp.u.assign(rows, 0.0);

    // Box + trust-region rows (normalised units).
    for (size_t i = 0; i < nu; ++i) {
      qp.a(i, i) = 1.0;
      const bool is_cap = (i % 2 == 0);
      const double lo = is_cap ? -cap_power_max_ : 0.0;
      const double hi = is_cap ? cap_power_max_ : pc_max_;
      qp.l[i] = std::max((lo - u_[i]) / T, -1.0);
      qp.u[i] = std::min((hi - u_[i]) / T, 1.0);
      if (qp.l[i] > qp.u[i]) qp.l[i] = qp.u[i];  // u outside box: pull in
    }

    // Linearised state and battery-power rows.
    for (size_t k = 0; k < n; ++k) {
      const size_t base = nu + 4 * k;
      const optim::Matrix& s1 = sens_[k + 1];
      // T_b
      for (size_t col = 0; col < nu; ++col) qp.a(base, col) = s1(0, col);
      qp.l[base] = t_min_k_ - xs[k + 1].t_battery_k;
      qp.u[base] = t_max_k_ - xs[k + 1].t_battery_k;
      // SoC
      for (size_t col = 0; col < nu; ++col)
        qp.a(base + 1, col) = s1(2, col);
      qp.l[base + 1] =
          problem_.options().soc_min_percent - xs[k + 1].soc_percent;
      qp.u[base + 1] = 100.0 - xs[k + 1].soc_percent;
      // SoE
      for (size_t col = 0; col < nu; ++col)
        qp.a(base + 2, col) = s1(3, col);
      qp.l[base + 2] =
          problem_.options().soe_min_percent - xs[k + 1].soe_percent;
      qp.u[base + 2] = 100.0 - xs[k + 1].soe_percent;
      // Battery power (C6): p_bs + dpbs_du du_k + dpbs_dx (x_k - x*_k).
      const auto& jk = jac[k];
      const optim::Matrix& s0 = sens_[k];
      for (size_t col = 0; col < nu; ++col) {
        double v = 0.0;
        for (size_t m = 0; m < 4; ++m) v += jk.dpbs_dx[m] * s0(m, col);
        qp.a(base + 3, col) = v;
      }
      qp.a(base + 3, 2 * k) += jk.dpbs_du[0];
      qp.a(base + 3, 2 * k + 1) += jk.dpbs_du[1];
      qp.l[base + 3] = -max_battery_power_w_ - jk.p_bs;
      qp.u[base + 3] = max_battery_power_w_ - jk.p_bs;
      // Guard against an infeasible incumbent: keep l <= u.
      for (size_t r = base; r < base + 4; ++r)
        if (qp.l[r] > qp.u[r]) qp.l[r] = qp.u[r];
    }

    // Convert the state/power rows from per-watt to per-normalised-unit
    // (x T), then equilibrate: kelvin/percent rows carry tiny entries
    // next to unit box rows, and ADMM needs comparable row norms.
    for (size_t r = nu; r < rows; ++r) {
      double m = 0.0;
      for (size_t col = 0; col < nu; ++col) {
        qp.a(r, col) *= T;
        m = std::max(m, std::abs(qp.a(r, col)));
      }
      if (m < 1e-9) {
        // Degenerate row (no control authority): drop it.
        qp.l[r] = -1e30;
        qp.u[r] = 1e30;
        continue;
      }
      for (size_t col = 0; col < nu; ++col) qp.a(r, col) /= m;
      qp.l[r] /= m;
      qp.u[r] /= m;

      // Soften rows the control cannot satisfy this round (e.g. a T_b
      // bound already violated beyond one window's cooling authority):
      // clip the bound to the best reachable value so the QP stays
      // feasible and still pushes as hard as it can, instead of letting
      // an infeasible row destabilise ADMM.
      double reach_min = 0.0, reach_max = 0.0;
      for (size_t col = 0; col < nu; ++col) {
        const double a = qp.a(r, col);
        reach_min += std::min(a * qp.l[col], a * qp.u[col]);
        reach_max += std::max(a * qp.l[col], a * qp.u[col]);
      }
      // 5 % slack off the exact vertex keeps the softened row from
      // pinning every variable at a bound (slow ADMM corner case).
      const double slack = 0.05 * (reach_max - reach_min);
      if (qp.u[r] < reach_min + slack) qp.u[r] = reach_min + slack;
      if (qp.l[r] > reach_max - slack) qp.l[r] = reach_max - slack;
      if (qp.l[r] > qp.u[r]) qp.l[r] = qp.u[r];
    }

    sol = options_.warm_start && have_qp_warm_
              ? qp_solver_.solve(qp, options_.qp, qp_warm_)
              : qp_solver_.solve(qp, options_.qp);
    }
    info_.qp_iterations += sol.iterations;
    info_.qp_rho_updates += sol.rho_updates;
    if (sol.warm_started) ++info_.qp_warm_hits;
    info_.kkt_refactorizations += sol.kkt_refactorizations;
    info_.stage_block_ops += sol.stage_block_ops;
    if (sol.polished) ++info_.qp_polish_hits;
    info_.qp_converged = sol.converged;
    info_.primal_residual = sol.primal_residual;
    info_.dual_residual = sol.dual_residual;
    ++info_.sqp_rounds;

    if (options_.warm_start) {
      // Terminal iterates seed the next round / next step.
      qp_warm_.x = sol.x;
      qp_warm_.y = sol.y;
      qp_warm_.rho = sol.rho_final;
      have_qp_warm_ = true;
    }

    // Apply the correction (de-normalise). The banded primal is
    // stage-major with the two controls leading each 6-wide block.
    const double T = options_.trust_region_w;
    const size_t stride = banded ? optim::kLtvStageVars : 2;
    for (size_t k = 0; k < n; ++k) {
      MpcProblem::Controls uk;
      uk.p_cap_bus_w = std::clamp(u_[2 * k] + T * sol.x[stride * k],
                                  -cap_power_max_, cap_power_max_);
      uk.p_cooler_w = std::clamp(
          u_[2 * k + 1] + T * sol.x[stride * k + 1], 0.0, pc_max_);
      problem_.encode(k, uk, z);
    }
  }

  // Refresh diagnostics at the final point.
  info_.cost = problem_.evaluate(z, c_);
  warm_z_ = z;
  have_warm_ = true;
  return problem_.decode(z, 0);
}

SolveDiagnostics LtvOtemController::diagnostics() const {
  SolveDiagnostics d;
  d.present = true;
  d.converged = info_.qp_converged;
  d.fallback = info_.fallback;
  d.sqp_rounds = info_.sqp_rounds;
  d.qp_iterations = info_.qp_iterations;
  d.qp_rho_updates = info_.qp_rho_updates;
  d.qp_warm_hits = info_.qp_warm_hits;
  d.kkt_refactorizations = info_.kkt_refactorizations;
  d.stage_block_ops = info_.stage_block_ops;
  d.qp_polish_hits = info_.qp_polish_hits;
  d.cost = info_.cost;
  d.primal_residual = info_.primal_residual;
  d.dual_residual = info_.dual_residual;
  return d;
}

}  // namespace otem::core
