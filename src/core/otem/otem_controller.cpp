#include "core/otem/otem_controller.h"

#include <algorithm>

#include "common/error.h"

namespace otem::core {

OtemSolverOptions OtemSolverOptions::from_config(const Config& cfg) {
  OtemSolverOptions o;
  o.al.adam.max_iterations = static_cast<size_t>(cfg.get_long(
      "otem.solver.adam_iterations",
      static_cast<long>(o.al.adam.max_iterations)));
  o.al.adam.learning_rate =
      cfg.get_double("otem.solver.learning_rate", o.al.adam.learning_rate);
  o.al.lbfgs.max_iterations = static_cast<size_t>(cfg.get_long(
      "otem.solver.lbfgs_iterations",
      static_cast<long>(o.al.lbfgs.max_iterations)));
  o.al.max_outer_iterations = static_cast<size_t>(cfg.get_long(
      "otem.solver.outer_iterations",
      static_cast<long>(o.al.max_outer_iterations)));
  o.al.initial_penalty =
      cfg.get_double("otem.solver.initial_penalty", o.al.initial_penalty);
  o.al.constraint_tolerance = cfg.get_double(
      "otem.solver.constraint_tolerance", o.al.constraint_tolerance);
  return o;
}

OtemController::OtemController(const SystemSpec& spec, MpcOptions mpc_options,
                               OtemSolverOptions solver_options)
    : problem_(spec, mpc_options), solver_(solver_options) {}

void OtemController::reset() {
  have_warm_ = false;
  warm_.clear();
  info_ = SolveInfo{};
}

MpcProblem::Controls OtemController::solve(
    const PlantState& state, const std::vector<double>& p_e_window) {
  problem_.set_window(state, p_e_window);

  const size_t dim = problem_.dim();
  optim::Vector x0(dim);
  info_.fallback = !(have_warm_ && warm_.size() == dim);
  if (have_warm_ && warm_.size() == dim) {
    // Shift the previous plan by one step; repeat the tail.
    for (size_t i = 0; i + 2 < dim; ++i) x0[i] = warm_[i + 2];
    x0[dim - 2] = warm_[dim - 2];
    x0[dim - 1] = warm_[dim - 1];
  } else {
    // Cold start: no UC use (z_cap = 0.5 encodes 0 W), cooler off.
    for (size_t k = 0; k < dim / 2; ++k) {
      x0[2 * k] = 0.5;
      x0[2 * k + 1] = 0.0;
    }
  }

  const optim::SolveResult r =
      optim::minimize_augmented_lagrangian(problem_, x0, solver_.al);

  warm_ = r.x;
  have_warm_ = true;

  // Refresh the rollout caches (predicted_states/last_cost) at the
  // accepted solution.
  optim::Vector c(problem_.num_constraints());
  info_.cost = problem_.evaluate(r.x, c);
  info_.constraint_violation = r.constraint_violation;
  info_.iterations = r.iterations;
  info_.converged = r.converged;
  info_.breakdown = problem_.last_cost();

  return problem_.decode(r.x, 0);
}

SolveDiagnostics OtemController::diagnostics() const {
  SolveDiagnostics d;
  d.present = true;
  d.converged = info_.converged;
  d.fallback = info_.fallback;
  d.iterations = info_.iterations;
  d.cost = info_.cost;
  d.constraint_violation = info_.constraint_violation;
  return d;
}

}  // namespace otem::core
