#include "core/forecast.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"

namespace otem::core {

namespace {
std::vector<double> slice(const TimeSeries& ts, size_t k, size_t horizon) {
  std::vector<double> out;
  out.reserve(horizon);
  for (size_t j = 0; j < horizon && k + j < ts.size(); ++j)
    out.push_back(ts[k + j]);
  return out;
}
}  // namespace

std::vector<double> PerfectForecast::window(size_t k,
                                            size_t horizon) const {
  return slice(truth_, k, horizon);
}

NoisyForecast::NoisyForecast(std::uint64_t seed, double relative_sigma,
                             double absolute_sigma_w)
    : seed_(seed),
      relative_sigma_(relative_sigma),
      absolute_sigma_w_(absolute_sigma_w) {
  OTEM_REQUIRE(relative_sigma >= 0.0 && absolute_sigma_w >= 0.0,
               "forecast noise levels must be non-negative");
}

std::string NoisyForecast::name() const {
  return "noisy(rel=" + strings::format_double(relative_sigma_, 2) +
         ",abs=" + strings::format_double(absolute_sigma_w_, 0) + ")";
}

std::vector<double> NoisyForecast::window(size_t k, size_t horizon) const {
  std::vector<double> out = slice(truth_, k, horizon);
  for (size_t j = 0; j < out.size(); ++j) {
    // Deterministic error per (absolute step, lead): re-querying the
    // same future instant at the same lead reproduces the same error;
    // as the instant draws nearer (smaller lead) the error shrinks.
    const std::uint64_t key =
        seed_ ^ (static_cast<std::uint64_t>(k + j) * 0x9e3779b97f4a7c15ULL) ^
        (static_cast<std::uint64_t>(j) << 32);
    Rng rng(key);
    const double growth = std::sqrt(static_cast<double>(j + 1));
    const double rel = rng.normal(0.0, relative_sigma_ * growth);
    const double abs = rng.normal(0.0, absolute_sigma_w_ * growth);
    out[j] = out[j] * (1.0 + rel) + abs;
  }
  return out;
}

SmoothedForecast::SmoothedForecast(double smooth_window_s)
    : smooth_window_s_(smooth_window_s) {
  OTEM_REQUIRE(smooth_window_s > 0.0,
               "forecast smoothing window must be positive");
}

void SmoothedForecast::reset(const TimeSeries& truth) {
  const int half = std::max(
      1, static_cast<int>(smooth_window_s_ / (2.0 * truth.dt())));
  std::vector<double> out(truth.size());
  for (size_t k = 0; k < truth.size(); ++k) {
    const size_t lo = k > static_cast<size_t>(half) ? k - half : 0;
    const size_t hi = std::min(truth.size() - 1, k + half);
    double s = 0.0;
    for (size_t j = lo; j <= hi; ++j) s += truth[j];
    out[k] = s / static_cast<double>(hi - lo + 1);
  }
  smoothed_ = TimeSeries(truth.dt(), std::move(out), truth.t0());
}

std::vector<double> SmoothedForecast::window(size_t k,
                                             size_t horizon) const {
  return slice(smoothed_, k, horizon);
}

std::vector<double> PersistenceForecast::window(size_t k,
                                                size_t horizon) const {
  if (truth_.empty()) return {};
  const double now = truth_[std::min(k, truth_.size() - 1)];
  return std::vector<double>(horizon, now);
}

std::unique_ptr<ForecastModel> make_forecast(const std::string& spec) {
  const auto parts = strings::split(spec, ':');
  OTEM_REQUIRE(!parts.empty(), "empty forecast spec");
  const std::string kind = strings::to_lower(parts[0]);
  if (kind == "perfect") return std::make_unique<PerfectForecast>();
  if (kind == "persistence")
    return std::make_unique<PersistenceForecast>();
  if (kind == "smoothed") {
    OTEM_REQUIRE(parts.size() == 2,
                 "smoothed forecast spec: smoothed:<window_s>");
    return std::make_unique<SmoothedForecast>(
        strings::parse_double(parts[1]));
  }
  if (kind == "noisy") {
    OTEM_REQUIRE(parts.size() == 4,
                 "noisy forecast spec: noisy:<seed>:<rel>:<abs_w>");
    return std::make_unique<NoisyForecast>(
        static_cast<std::uint64_t>(strings::parse_long(parts[1])),
        strings::parse_double(parts[2]), strings::parse_double(parts[3]));
  }
  throw SimError("unknown forecast model: '" + spec + "'");
}

}  // namespace otem::core
