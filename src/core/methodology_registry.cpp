#include "core/methodology_registry.h"

#include "common/error.h"
#include "common/strings.h"

namespace otem::core {

MethodologyRegistry& MethodologyRegistry::instance() {
  static MethodologyRegistry registry = [] {
    MethodologyRegistry r;
    detail::register_parallel_methodology(r);
    detail::register_cooling_methodology(r);
    detail::register_dual_methodology(r);
    detail::register_otem_methodologies(r);
    return r;
  }();
  return registry;
}

void MethodologyRegistry::add(const std::string& name, Factory factory) {
  OTEM_REQUIRE(!name.empty(), "methodology name must be non-empty");
  OTEM_REQUIRE(factory != nullptr,
               "methodology '" + name + "' needs a factory");
  OTEM_REQUIRE(factories_.emplace(name, std::move(factory)).second,
               "methodology '" + name + "' registered twice");
}

bool MethodologyRegistry::contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> MethodologyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<Methodology> MethodologyRegistry::create(
    const SystemSpec& spec, const Config& cfg,
    const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw SimError("unknown methodology '" + name + "' (registered: " +
                   strings::join(names(), ", ") + ")");
  }
  return it->second(spec, cfg);
}

std::unique_ptr<Methodology> make_methodology(const std::string& name,
                                              const SystemSpec& spec,
                                              const Config& cfg) {
  return MethodologyRegistry::instance().create(spec, cfg, name);
}

}  // namespace otem::core
