// methodology_registry.h — name -> factory registry for management
// strategies.
//
// Every runner used to hand-construct its controllers (at one point 17
// binaries included the methodology headers directly); the registry
// makes "which strategy" a plain string resolved at run time, so the
// CLI, the scenario engine, the benches and the fleet harness all share
// one construction path. A factory receives the SystemSpec it must
// control plus the experiment Config, from which it reads its own
// parameter namespace ("otem.*", "dual.*", "cooling.*", "forecast").
//
// The built-ins register themselves: each methodology's translation
// unit defines a registration hook (detail::register_*_methodology)
// that instance() invokes on first use. The hooks are explicit function
// calls rather than static-initializer objects because the methodologies
// live in a static library — the linker would drop an object file whose
// only referenced symbol is an unexported initializer, and registration
// would silently depend on what else the binary happened to use.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/methodology.h"
#include "core/system_spec.h"

namespace otem::core {

class MethodologyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Methodology>(
      const SystemSpec&, const Config&)>;

  /// The process-wide registry with the built-ins installed.
  static MethodologyRegistry& instance();

  /// Register a factory under `name`; throws SimError on duplicates.
  void add(const std::string& name, Factory factory);

  bool contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// Instantiate by name; throws SimError listing the registered names
  /// when `name` is unknown.
  std::unique_ptr<Methodology> create(const SystemSpec& spec,
                                      const Config& cfg,
                                      const std::string& name) const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Shorthand for MethodologyRegistry::instance().create(...).
std::unique_ptr<Methodology> make_methodology(const std::string& name,
                                              const SystemSpec& spec,
                                              const Config& cfg);

namespace detail {
// Registration hooks, one per built-in translation unit.
void register_parallel_methodology(MethodologyRegistry& registry);
void register_cooling_methodology(MethodologyRegistry& registry);
void register_dual_methodology(MethodologyRegistry& registry);
void register_otem_methodologies(MethodologyRegistry& registry);
}  // namespace detail

}  // namespace otem::core
