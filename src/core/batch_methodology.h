// batch_methodology.h — structure-of-arrays plant state and the
// lockstep batch counterpart of the Methodology interface.
//
// A BatchMethodology advances MANY missions one plant step at a time
// through flat loops over contiguous per-field lane arrays (PlantLanes)
// instead of one mission through scalar state. The per-lane arithmetic
// is the exact scalar-path expressions (see the step_lanes kernels in
// thermal/battery/ultracap/hees), so a batch run is bit-identical to
// the scalar Methodology oracle — tests/test_plant_batch.cpp pins that.
//
// Lanes are independent missions sharing one SystemSpec "shape"; only
// the ambient temperature (the fleet's per-mission draw) may differ per
// lane. Lane lifecycle (activation, retirement, backfill) lives in
// sim::PlantBatch; this layer only steps whatever lanes are marked
// active.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/methodology.h"
#include "core/system_spec.h"

namespace otem::core {

/// Structure-of-arrays plant state: one contiguous arena holding the
/// four state fields as lane-indexed arrays [tb | tc | soe | soc].
/// Field pointers are stable for the life of the object, so kernels
/// can cache them across steps; the arena is reused across batches.
class PlantLanes {
 public:
  explicit PlantLanes(size_t lanes)
      : lanes_(lanes), arena_(4 * lanes, 0.0) {}

  size_t lanes() const { return lanes_; }

  double* t_battery_k() { return arena_.data(); }
  double* t_coolant_k() { return arena_.data() + lanes_; }
  double* soe_percent() { return arena_.data() + 2 * lanes_; }
  double* soc_percent() { return arena_.data() + 3 * lanes_; }
  const double* t_battery_k() const { return arena_.data(); }
  const double* t_coolant_k() const { return arena_.data() + lanes_; }
  const double* soe_percent() const { return arena_.data() + 2 * lanes_; }
  const double* soc_percent() const { return arena_.data() + 3 * lanes_; }

  /// AoS view of one lane (StepRecord::state_after, sink delivery).
  PlantState gather(size_t lane) const {
    PlantState s;
    s.t_battery_k = t_battery_k()[lane];
    s.t_coolant_k = t_coolant_k()[lane];
    s.soe_percent = soe_percent()[lane];
    s.soc_percent = soc_percent()[lane];
    return s;
  }

  /// Load one lane from an AoS state (lane activation/backfill).
  void scatter(size_t lane, const PlantState& s) {
    t_battery_k()[lane] = s.t_battery_k;
    t_coolant_k()[lane] = s.t_coolant_k;
    soe_percent()[lane] = s.soe_percent;
    soc_percent()[lane] = s.soc_percent;
  }

 private:
  size_t lanes_;
  std::vector<double> arena_;
};

/// Lockstep batch strategy: the batch analogue of core::Methodology.
/// Implementations exist for the reactive baselines (parallel, dual) —
/// solver-driven methodologies (otem-ltv etc.) have no batch form and
/// keep using the scalar path.
class BatchMethodology {
 public:
  virtual ~BatchMethodology() = default;

  virtual std::string name() const = 0;

  /// Fixed lane count chosen at construction.
  virtual size_t lanes() const = 0;

  /// Re-arm one lane for a fresh mission: clears any per-lane
  /// controller state and records the mission's ambient temperature.
  /// The caller scatters the initial PlantState separately.
  virtual void reset_lane(size_t lane, double ambient_k) = 0;

  /// Advance every active lane by one plant step. `p_e_w[l]` is lane
  /// l's power request; lanes with `active[l] == 0` are skipped
  /// (active == nullptr means all lanes live). For each active lane,
  /// `rec[l]` is filled exactly as the scalar Methodology::step would.
  virtual void step_lanes(PlantLanes& state, const double* p_e_w,
                          const unsigned char* active, double dt,
                          StepRecord* rec) = 0;
};

/// Build the batch counterpart of the named methodology, or nullptr if
/// the methodology has no lockstep form (callers then fall back to the
/// scalar path). Names match MethodologyRegistry ("parallel", "dual").
std::unique_ptr<BatchMethodology> make_batch_methodology(
    const std::string& name, const SystemSpec& spec, size_t lanes,
    const Config& cfg = Config());

}  // namespace otem::core
