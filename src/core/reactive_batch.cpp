#include "core/reactive_batch.h"

#include "common/error.h"

namespace otem::core {

// --- ReactiveBatchBase --------------------------------------------------

ReactiveBatchBase::ReactiveBatchBase(const SystemSpec& spec, size_t lanes)
    : cooling_(spec.make_cooling()),
      n_(lanes),
      ambient_(lanes, spec.ambient_k),
      t_inlet_(lanes, 0.0),
      q_(lanes, 0.0),
      arch_out_(lanes) {
  OTEM_REQUIRE(lanes >= 1, "batch methodology needs >= 1 lane");
}

void ReactiveBatchBase::thermal_tier_and_commit(PlantLanes& state,
                                                const double* p_e_w,
                                                const unsigned char* active,
                                                double dt, StepRecord* rec) {
  if (dt != matrix_dt_) {
    matrix_ = cooling_.step_matrix(dt);
    matrix_dt_ = dt;
  }
  double* tb = state.t_battery_k();
  double* tc = state.t_coolant_k();
  double* soc = state.soc_percent();
  double* soe = state.soe_percent();

  // SIMD tier: inlet from the PRE-step coolant temperature, then the
  // affine thermal sweep — same order as the scalar methodologies.
  cooling_.passive_inlet_lanes(tc, ambient_.data(), t_inlet_.data(), n_);
  for (size_t l = 0; l < n_; ++l) q_[l] = arch_out_[l].q_bat_w;
  thermal::CoolingSystem::step_lanes(matrix_, tb, tc, q_.data(),
                                     t_inlet_.data(), n_);

  for (size_t l = 0; l < n_; ++l) {
    if (active && !active[l]) continue;
    const hees::ArchStep& a = arch_out_[l];
    soc[l] = a.soc_next;
    soe[l] = a.soe_next;
    StepRecord r;
    r.p_load_w = p_e_w[l];
    r.t_inlet_k = t_inlet_[l];
    r.i_bat_a = a.i_bat_a;
    r.i_cap_a = a.i_cap_a;
    r.q_bat_w = a.q_bat_w;
    r.e_bat_j = a.e_bat_j;
    r.e_cap_j = a.e_cap_j;
    r.e_loss_j = a.e_loss_j;
    r.qloss_percent = a.qloss_percent;
    r.feasible = a.feasible;
    r.unmet_w = a.unmet_bus_w;
    r.state_after = state.gather(l);
    rec[l] = r;
  }
}

// --- ParallelBatchMethodology -------------------------------------------

ParallelBatchMethodology::ParallelBatchMethodology(const SystemSpec& spec,
                                                   size_t lanes)
    : ReactiveBatchBase(spec, lanes), arch_(spec.make_parallel_arch()) {}

void ParallelBatchMethodology::reset_lane(size_t lane, double ambient_k) {
  OTEM_REQUIRE(lane < n_, "lane index out of range");
  ambient_[lane] = ambient_k;
}

void ParallelBatchMethodology::step_lanes(PlantLanes& state,
                                          const double* p_e_w,
                                          const unsigned char* active,
                                          double dt, StepRecord* rec) {
  arch_.step_lanes(state.soc_percent(), state.soe_percent(),
                   state.t_battery_k(), p_e_w, dt, arch_out_.data(), n_,
                   active);
  thermal_tier_and_commit(state, p_e_w, active, dt, rec);
}

// --- DualBatchMethodology -----------------------------------------------

DualBatchMethodology::DualBatchMethodology(const SystemSpec& spec,
                                           size_t lanes,
                                           DualPolicyParams policy)
    : ReactiveBatchBase(spec, lanes),
      arch_(spec.make_dual_arch()),
      policy_(policy),
      venting_(lanes, 0),
      mode_(lanes, hees::DualMode::kBatteryOnly) {
  if (policy_.hot_threshold_k <= 0.0)
    policy_.hot_threshold_k = spec.thermal.max_battery_temp_k - 4.0;
  arch_.set_recharge_power_w(policy_.recharge_power_w);
}

void DualBatchMethodology::reset_lane(size_t lane, double ambient_k) {
  OTEM_REQUIRE(lane < n_, "lane index out of range");
  ambient_[lane] = ambient_k;
  venting_[lane] = 0;
  mode_[lane] = hees::DualMode::kBatteryOnly;
}

void DualBatchMethodology::step_lanes(PlantLanes& state, const double* p_e_w,
                                      const unsigned char* active, double dt,
                                      StepRecord* rec) {
  const double* tb = state.t_battery_k();
  const double* soe = state.soe_percent();

  // Per-lane switching policy [16] on the PRE-step state — the exact
  // branch structure of DualMethodology::step.
  for (size_t l = 0; l < n_; ++l) {
    if (active && !active[l]) continue;
    const double tbl = tb[l];
    bool venting = venting_[l] != 0;
    if (venting) {
      if (tbl < policy_.hot_threshold_k - policy_.cool_band_k ||
          soe[l] <= policy_.min_soe_percent)
        venting = false;
    } else if (tbl > policy_.hot_threshold_k &&
               soe[l] > policy_.min_soe_percent) {
      venting = true;
    }
    venting_[l] = venting ? 1 : 0;

    const bool bank_low = soe[l] < policy_.recharge_below_percent;
    if (venting) {
      mode_[l] = (p_e_w[l] >= policy_.vent_load_min_w || p_e_w[l] < 0.0)
                     ? hees::DualMode::kUltracapOnly
                     : hees::DualMode::kBatteryOnly;
    } else if (bank_low && p_e_w[l] < 0.0) {
      mode_[l] = hees::DualMode::kUltracapOnly;
    } else if (bank_low && p_e_w[l] < policy_.recharge_load_max_w &&
               tbl < policy_.hot_threshold_k) {
      mode_[l] = hees::DualMode::kRecharge;
    } else {
      mode_[l] = hees::DualMode::kBatteryOnly;
    }
  }

  arch_.step_lanes(state.soc_percent(), state.soe_percent(),
                   state.t_battery_k(), p_e_w, mode_.data(), dt,
                   arch_out_.data(), n_, active);
  thermal_tier_and_commit(state, p_e_w, active, dt, rec);
}

// --- factory ------------------------------------------------------------

std::unique_ptr<BatchMethodology> make_batch_methodology(
    const std::string& name, const SystemSpec& spec, size_t lanes,
    const Config& cfg) {
  if (name == "parallel")
    return std::make_unique<ParallelBatchMethodology>(spec, lanes);
  if (name == "dual")
    return std::make_unique<DualBatchMethodology>(
        spec, lanes, DualPolicyParams::from_config(cfg));
  return nullptr;  // no lockstep form — caller uses the scalar path
}

}  // namespace otem::core
