// cooling_methodology.h — baseline [25]: battery-only storage with an
// active battery cooling system.
//
// "Only battery is used as the energy storage and active battery
// cooling system is utilized to maintain the battery temperature in the
// safe range" (Section IV-B.2). [25]-class thermal managements hold the
// coolant at a fixed cold inlet temperature with a fixed flow rate —
// the cooler spends whatever it takes to keep T_i at target whenever
// the pack is warmer, regardless of whether the electrochemistry would
// rather save the energy. That bluntness is exactly what OTEM's Fig. 9
// comparison improves on.
#pragma once

#include "core/methodology.h"
#include "core/system_spec.h"

namespace otem::core {

struct CoolingPolicyParams {
  /// Coolant inlet temperature the cooler maintains [K] (21 C default —
  /// a typical liquid-loop chiller target).
  double inlet_target_k = 294.15;

  /// Do not spend cooler power when the battery is already below this
  /// temperature [K] (the loop idles; pump off).
  double engage_above_k = 297.15;

  /// Read overrides with prefix "cooling." from cfg.
  static CoolingPolicyParams from_config(const Config& cfg);
};

class CoolingMethodology final : public Methodology {
 public:
  CoolingMethodology(const SystemSpec& spec, CoolingPolicyParams policy = {});

  std::string name() const override { return "active_cooling"; }

  void reset(const PlantState& initial,
             const TimeSeries& power_forecast) override;

  StepRecord step(PlantState& state, double p_e_w, size_t k,
                  double dt) override;

 private:
  battery::PackModel battery_;
  battery::CapacityFadeModel fade_;
  thermal::CoolingSystem cooling_;
  CoolingPolicyParams policy_;
  double ambient_k_;
  double pump_w_;
};

}  // namespace otem::core
