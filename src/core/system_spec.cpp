#include "core/system_spec.h"

#include "common/error.h"

namespace otem::core {

SystemSpec SystemSpec::from_config(const Config& cfg) {
  SystemSpec s;
  s.battery = battery::PackParams::from_config(cfg);
  s.ultracap = ultracap::BankParams::from_config(cfg);

  // The thermal lump's battery-side heat capacity is the pack's, unless
  // explicitly overridden.
  thermal::CoolingParams th;
  th.battery_heat_capacity = s.battery.heat_capacity_j_k();
  Config th_cfg = cfg;
  if (!cfg.has("thermal.battery_heat_capacity"))
    th_cfg.set("thermal.battery_heat_capacity", th.battery_heat_capacity);
  s.thermal = thermal::CoolingParams::from_config(th_cfg);

  s.hybrid = hees::HybridParams::for_storages(
      battery::PackModel(s.battery), ultracap::BankModel(s.ultracap), cfg);
  s.vehicle = vehicle::VehicleParams::from_config(cfg);
  s.ambient_k = cfg.get_double("ambient_k", s.ambient_k);
  s.dt = cfg.get_double("dt", s.dt);
  OTEM_REQUIRE(s.dt > 0.0, "plant step must be positive");
  return s;
}

SystemSpec SystemSpec::with_ultracap_size(double capacitance_f) const {
  OTEM_REQUIRE(capacitance_f > 0.0, "ultracap size must be positive");
  SystemSpec s = *this;
  s.ultracap.capacitance_f = capacitance_f;
  // Converter nominal voltage tracks the bank's rated voltage, which is
  // size-independent here, so hybrid params stay valid.
  return s;
}

battery::PackModel SystemSpec::make_battery() const {
  return battery::PackModel(battery);
}

ultracap::BankModel SystemSpec::make_ultracap() const {
  return ultracap::BankModel(ultracap);
}

thermal::CoolingSystem SystemSpec::make_cooling() const {
  return thermal::CoolingSystem(thermal);
}

vehicle::Powertrain SystemSpec::make_powertrain() const {
  return vehicle::Powertrain(vehicle);
}

hees::ParallelArchitecture SystemSpec::make_parallel_arch() const {
  return hees::ParallelArchitecture(make_battery(), make_ultracap());
}

hees::DualArchitecture SystemSpec::make_dual_arch() const {
  return hees::DualArchitecture(make_battery(), make_ultracap());
}

hees::HybridArchitecture SystemSpec::make_hybrid_arch() const {
  return hees::HybridArchitecture(make_battery(), make_ultracap(), hybrid);
}

}  // namespace otem::core
