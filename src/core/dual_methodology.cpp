#include "core/dual_methodology.h"

#include "core/methodology_registry.h"

namespace otem::core {

DualPolicyParams DualPolicyParams::from_config(const Config& cfg) {
  DualPolicyParams p;
  p.hot_threshold_k = cfg.get_double("dual.hot_threshold_k", p.hot_threshold_k);
  p.cool_band_k = cfg.get_double("dual.cool_band_k", p.cool_band_k);
  p.min_soe_percent = cfg.get_double("dual.min_soe", p.min_soe_percent);
  p.recharge_below_percent =
      cfg.get_double("dual.recharge_below", p.recharge_below_percent);
  p.recharge_load_max_w =
      cfg.get_double("dual.recharge_load_max", p.recharge_load_max_w);
  p.recharge_power_w =
      cfg.get_double("dual.recharge_power", p.recharge_power_w);
  p.vent_load_min_w =
      cfg.get_double("dual.vent_load_min", p.vent_load_min_w);
  return p;
}

DualMethodology::DualMethodology(const SystemSpec& spec,
                                 DualPolicyParams policy)
    : arch_(spec.make_dual_arch()),
      cooling_(spec.make_cooling()),
      policy_(policy),
      ambient_k_(spec.ambient_k) {
  if (policy_.hot_threshold_k <= 0.0)
    policy_.hot_threshold_k = spec.thermal.max_battery_temp_k - 4.0;
  arch_.set_recharge_power_w(policy_.recharge_power_w);
}

void DualMethodology::reset(const PlantState&, const TimeSeries&) {
  mode_ = hees::DualMode::kBatteryOnly;
  venting_ = false;
}

StepRecord DualMethodology::step(PlantState& state, double p_e_w, size_t,
                                 double dt) {
  StepRecord rec;
  rec.p_load_w = p_e_w;

  // --- switching policy [16] ------------------------------------------
  const double tb = state.t_battery_k;
  if (venting_) {
    // Stay on the UC until the battery cooled or the bank is exhausted.
    if (tb < policy_.hot_threshold_k - policy_.cool_band_k ||
        state.soe_percent <= policy_.min_soe_percent)
      venting_ = false;
  } else if (tb > policy_.hot_threshold_k &&
             state.soe_percent > policy_.min_soe_percent) {
    venting_ = true;
  }

  const bool bank_low =
      state.soe_percent < policy_.recharge_below_percent;
  if (venting_) {
    // Spend the bank where it counts: heavy requests (and regen
    // capture); light loads barely heat the resting battery.
    mode_ = (p_e_w >= policy_.vent_load_min_w || p_e_w < 0.0)
                ? hees::DualMode::kUltracapOnly
                : hees::DualMode::kBatteryOnly;
  } else if (bank_low && p_e_w < 0.0) {
    // Free recharge: route regen into the bank instead of the battery.
    mode_ = hees::DualMode::kUltracapOnly;
  } else if (bank_low && p_e_w < policy_.recharge_load_max_w &&
             tb < policy_.hot_threshold_k) {
    // Battery serves the (light) load and pushes a current-limited
    // recharge into the bank — extra battery current and heat, the
    // cost [16] pays to restore its thermal headroom. Waiting for a
    // low-load window keeps that cost down.
    mode_ = hees::DualMode::kRecharge;
  } else {
    mode_ = hees::DualMode::kBatteryOnly;
  }

  const hees::ArchStep arch =
      arch_.step(state.soc_percent, state.soe_percent, tb, p_e_w, mode_, dt);

  const double t_inlet =
      cooling_.passive_inlet(state.t_coolant_k, ambient_k_);
  const thermal::ThermalState th = cooling_.step(
      {state.t_battery_k, state.t_coolant_k}, arch.q_bat_w, t_inlet, dt);

  state.t_battery_k = th.t_battery_k;
  state.t_coolant_k = th.t_coolant_k;
  state.soc_percent = arch.soc_next;
  state.soe_percent = arch.soe_next;

  rec.t_inlet_k = t_inlet;
  rec.i_bat_a = arch.i_bat_a;
  rec.i_cap_a = arch.i_cap_a;
  rec.q_bat_w = arch.q_bat_w;
  rec.e_bat_j = arch.e_bat_j;
  rec.e_cap_j = arch.e_cap_j;
  rec.e_loss_j = arch.e_loss_j;
  rec.qloss_percent = arch.qloss_percent;
  rec.feasible = arch.feasible;
  rec.unmet_w = arch.unmet_bus_w;
  rec.state_after = state;
  return rec;
}

namespace detail {
void register_dual_methodology(MethodologyRegistry& registry) {
  registry.add("dual", [](const SystemSpec& spec, const Config& cfg) {
    return std::make_unique<DualMethodology>(
        spec, DualPolicyParams::from_config(cfg));
  });
}
}  // namespace detail

}  // namespace otem::core
