#include "core/parallel_methodology.h"

#include "core/methodology_registry.h"

namespace otem::core {

ParallelMethodology::ParallelMethodology(const SystemSpec& spec)
    : arch_(spec.make_parallel_arch()),
      cooling_(spec.make_cooling()),
      ambient_k_(spec.ambient_k) {}

void ParallelMethodology::reset(const PlantState&, const TimeSeries&) {}

StepRecord ParallelMethodology::step(PlantState& state, double p_e_w,
                                     size_t /*k*/, double dt) {
  StepRecord rec;
  rec.p_load_w = p_e_w;

  const hees::ArchStep arch = arch_.step(
      state.soc_percent, state.soe_percent, state.t_battery_k, p_e_w, dt);

  // Passive coolant loop: inlet at the ambient-radiator temperature,
  // no cooler/pump electric cost.
  const double t_inlet =
      cooling_.passive_inlet(state.t_coolant_k, ambient_k_);
  const thermal::ThermalState th = cooling_.step(
      {state.t_battery_k, state.t_coolant_k}, arch.q_bat_w, t_inlet, dt);

  state.t_battery_k = th.t_battery_k;
  state.t_coolant_k = th.t_coolant_k;
  state.soc_percent = arch.soc_next;
  state.soe_percent = arch.soe_next;

  rec.t_inlet_k = t_inlet;
  rec.i_bat_a = arch.i_bat_a;
  rec.i_cap_a = arch.i_cap_a;
  rec.q_bat_w = arch.q_bat_w;
  rec.e_bat_j = arch.e_bat_j;
  rec.e_cap_j = arch.e_cap_j;
  rec.e_loss_j = arch.e_loss_j;
  rec.qloss_percent = arch.qloss_percent;
  rec.feasible = arch.feasible;
  rec.unmet_w = arch.unmet_bus_w;
  rec.state_after = state;
  return rec;
}

namespace detail {
void register_parallel_methodology(MethodologyRegistry& registry) {
  registry.add("parallel", [](const SystemSpec& spec, const Config&) {
    return std::make_unique<ParallelMethodology>(spec);
  });
}
}  // namespace detail

}  // namespace otem::core
