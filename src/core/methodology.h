// methodology.h — interface every energy/thermal management strategy
// implements.
//
// A Methodology pairs an HEES architecture with its control policy: the
// paper's three baselines (Parallel [15], Active-cooling-only [25],
// Dual [16]) and OTEM itself. The simulator drives any of them through
// the same loop, making the Fig. 6/8/9 and Table I comparisons a matter
// of swapping the object.
#pragma once

#include <memory>
#include <string>

#include "common/timeseries.h"
#include "core/plant_state.h"
#include "core/solve_diagnostics.h"

namespace otem::core {

/// Everything that happened during one plant step — consumed by the
/// metrics/trace layer.
struct StepRecord {
  double p_load_w = 0.0;       ///< EV power request P_e served this step
  double p_cooler_w = 0.0;     ///< cooler electric power
  double p_pump_w = 0.0;       ///< pump electric power
  double t_inlet_k = 0.0;      ///< coolant inlet applied

  double i_bat_a = 0.0;        ///< battery pack current (mean)
  double i_cap_a = 0.0;        ///< ultracap current (mean)
  double q_bat_w = 0.0;        ///< battery heat generation (mean)

  double e_bat_j = 0.0;        ///< battery chemistry energy this step
  double e_cap_j = 0.0;        ///< ultracap terminal energy this step
  double e_cooling_j = 0.0;    ///< cooler + pump electric energy
  double e_loss_j = 0.0;       ///< resistive + conversion losses

  double qloss_percent = 0.0;  ///< battery capacity loss this step
  double unmet_w = 0.0;        ///< bus power the HEES failed to deliver

  PlantState state_after;      ///< plant state at the end of the step
  bool feasible = true;        ///< false when a physical clamp fired

  /// Solver behaviour this step; `solve.present == false` for the
  /// reactive baselines (no solver runs).
  SolveDiagnostics solve;
};

class Methodology {
 public:
  virtual ~Methodology() = default;

  virtual std::string name() const = 0;

  /// Called once before a run. `power_forecast` is the full predicted
  /// EV power-request trace P_hat_e (Algorithm 1 input); predictive
  /// strategies (OTEM) read ahead into it, reactive baselines ignore it.
  virtual void reset(const PlantState& initial,
                     const TimeSeries& power_forecast) = 0;

  /// Advance one plant step: serve request p_e_w at step index k,
  /// mutate `state`, and report what happened.
  virtual StepRecord step(PlantState& state, double p_e_w, size_t k,
                          double dt) = 0;
};

}  // namespace otem::core
