// teb.h — the paper's Thermal and Energy Budget (TEB) metric.
//
// TEB quantifies how prepared the HEES is for upcoming power requests
// (Section I): the THERMAL budget is the heat the battery pack can
// absorb before hitting the C1 safety ceiling; the ENERGY budget is the
// ultracapacitor energy usable above the C5 floor. OTEM's whole point
// is to keep TEB adequate *before* large requests arrive — pre-cool or
// pre-charge "up to the perfect amount". Fig. 7 plots these components
// over time.
#pragma once

#include "core/plant_state.h"
#include "core/system_spec.h"

namespace otem::core {

struct TebValue {
  /// Heat absorbable before T_b reaches the safety ceiling [J thermal]:
  /// C_b * (T_b,max - T_b), floored at 0.
  double thermal_budget_j = 0.0;

  /// Ultracap energy available above the SoE floor [J electric].
  double energy_budget_j = 0.0;

  /// Normalised budgets in [0, 1] (fraction of the full band).
  double thermal_fraction = 0.0;
  double energy_fraction = 0.0;

  /// Combined scalar: mean of the two fractions — the single "TEB"
  /// number used in telemetry.
  double combined() const {
    return 0.5 * (thermal_fraction + energy_fraction);
  }
};

class TebMetric {
 public:
  explicit TebMetric(const SystemSpec& spec);

  TebValue evaluate(const PlantState& state) const;

 private:
  double battery_heat_capacity_;
  double t_max_k_;
  double t_min_k_;
  double soe_floor_;
  double cap_energy_j_;
};

}  // namespace otem::core
