// reactive_batch.h — lockstep batch forms of the reactive baselines.
//
// ParallelBatchMethodology and DualBatchMethodology mirror
// ParallelMethodology / DualMethodology step for step:
//
//   1. architecture step per lane from the PRE-step state (scalar tier:
//      the electro-chemical substep loop is exp/sqrt-bound, and
//      vectorized libm is not bit-identical to scalar libm);
//   2. passive inlet + affine thermal update as flat SIMD loops over
//      all lanes, with the StepMatrix hoisted once per dt — the scalar
//      path recomputes it every step, which is the main structural win;
//   3. commit SoC/SoE and fill one StepRecord per active lane.
//
// The dual policy's per-lane hysteresis (venting flag, last mode) lives
// in lane-indexed arrays reset on backfill.
#pragma once

#include <vector>

#include "core/batch_methodology.h"
#include "core/dual_methodology.h"
#include "hees/dual_arch.h"
#include "hees/parallel_arch.h"
#include "thermal/cooling_system.h"

namespace otem::core {

/// Shared lane scratch + the SIMD thermal tier (steps 2-3 above).
class ReactiveBatchBase : public BatchMethodology {
 public:
  ReactiveBatchBase(const SystemSpec& spec, size_t lanes);

  size_t lanes() const override { return n_; }

 protected:
  /// Flat passive-inlet + thermal sweep over ALL lanes (inactive lanes
  /// evolve harmlessly toward their stale ambient; their state is
  /// re-scattered on backfill), then SoC/SoE commit and StepRecord fill
  /// for active lanes from arch_out_.
  void thermal_tier_and_commit(PlantLanes& state, const double* p_e_w,
                               const unsigned char* active, double dt,
                               StepRecord* rec);

  thermal::CoolingSystem cooling_;
  size_t n_;
  double matrix_dt_ = 0.0;  ///< dt the cached matrix_ was built for
  thermal::StepMatrix matrix_;
  std::vector<double> ambient_;  ///< per-lane mission ambient [K]
  std::vector<double> t_inlet_;  ///< scratch: passive inlet per lane
  std::vector<double> q_;        ///< scratch: battery heat per lane
  std::vector<hees::ArchStep> arch_out_;
};

class ParallelBatchMethodology final : public ReactiveBatchBase {
 public:
  ParallelBatchMethodology(const SystemSpec& spec, size_t lanes);

  std::string name() const override { return "parallel"; }
  void reset_lane(size_t lane, double ambient_k) override;
  void step_lanes(PlantLanes& state, const double* p_e_w,
                  const unsigned char* active, double dt,
                  StepRecord* rec) override;

 private:
  hees::ParallelArchitecture arch_;
};

class DualBatchMethodology final : public ReactiveBatchBase {
 public:
  DualBatchMethodology(const SystemSpec& spec, size_t lanes,
                       DualPolicyParams policy = {});

  std::string name() const override { return "dual"; }
  void reset_lane(size_t lane, double ambient_k) override;
  void step_lanes(PlantLanes& state, const double* p_e_w,
                  const unsigned char* active, double dt,
                  StepRecord* rec) override;

 private:
  hees::DualArchitecture arch_;
  DualPolicyParams policy_;
  std::vector<unsigned char> venting_;  ///< per-lane hysteresis flag
  std::vector<hees::DualMode> mode_;    ///< per-lane switch decision
};

}  // namespace otem::core
