// system_spec.h — one bundle of every physical parameter set.
//
// "For fairness of the comparisons, all methodologies have been applied
// for the same system configuration" (paper Section IV-B). SystemSpec
// is that configuration: battery pack, ultracapacitor bank, cooling
// loop, converters, vehicle and environment. Benchmarks build one spec,
// then instantiate each methodology from it.
#pragma once

#include "battery/battery_model.h"
#include "common/config.h"
#include "hees/dual_arch.h"
#include "hees/hybrid_arch.h"
#include "hees/parallel_arch.h"
#include "thermal/cooling_system.h"
#include "ultracap/ultracap_model.h"
#include "vehicle/powertrain.h"

namespace otem::core {

struct SystemSpec {
  battery::PackParams battery;
  ultracap::BankParams ultracap;
  thermal::CoolingParams thermal;
  hees::HybridParams hybrid;
  vehicle::VehicleParams vehicle;

  /// Environment temperature [K] — the paper evaluates across different
  /// environment temperatures; default 25 C.
  double ambient_k = 298.15;

  /// Plant step [s] (drive cycles are 1 Hz).
  double dt = 1.0;

  /// Build with every default consistent (thermal heat capacity derived
  /// from the pack, converter nominal voltages from the storages),
  /// applying config overrides. `spec.ambient_k` reads "ambient_k";
  /// "ultracap.capacitance_f" is the Table I sweep knob.
  static SystemSpec from_config(const Config& cfg = Config());

  /// Convenience: same spec with a different ultracapacitor size [F]
  /// (converter nominal voltages stay consistent).
  SystemSpec with_ultracap_size(double capacitance_f) const;

  // --- model factories ------------------------------------------------
  battery::PackModel make_battery() const;
  ultracap::BankModel make_ultracap() const;
  thermal::CoolingSystem make_cooling() const;
  vehicle::Powertrain make_powertrain() const;
  hees::ParallelArchitecture make_parallel_arch() const;
  hees::DualArchitecture make_dual_arch() const;
  hees::HybridArchitecture make_hybrid_arch() const;
};

}  // namespace otem::core
