// parallel_methodology.h — baseline [15]: plain parallel HEES.
//
// "There is no thermal or energy management implemented" (Section
// IV-B.1): the battery and ultracapacitor hang in parallel across the
// load, physics does the power split, and the coolant loop runs
// passively at the ambient-radiator inlet with no cooler or pump cost.
#pragma once

#include "core/methodology.h"
#include "core/system_spec.h"

namespace otem::core {

class ParallelMethodology final : public Methodology {
 public:
  explicit ParallelMethodology(const SystemSpec& spec);

  std::string name() const override { return "parallel"; }

  void reset(const PlantState& initial,
             const TimeSeries& power_forecast) override;

  StepRecord step(PlantState& state, double p_e_w, size_t k,
                  double dt) override;

 private:
  hees::ParallelArchitecture arch_;
  thermal::CoolingSystem cooling_;
  double ambient_k_;
};

}  // namespace otem::core
