// dual_methodology.h — baseline [16]: dual architecture with
// temperature-threshold switching.
//
// [16]'s policy, as described in the paper's Section I case study and
// Fig. 6: drive from the battery; when T_b crosses a hot threshold,
// switch the load to the ultracapacitor so the battery rests and cools
// passively; switch back when the battery has cooled (or the bank is
// exhausted). While on battery with a depleted bank, recharge the
// bank by closing both switches (parallel mode) — which adds battery
// current and heat, the failure mode Fig. 1 shows for undersized banks.
#pragma once

#include "core/methodology.h"
#include "core/system_spec.h"

namespace otem::core {

struct DualPolicyParams {
  /// Switch the load to the UC above this T_b [K]. [16] maintains the
  /// cells near their preferred operating temperature, so the default
  /// threshold sits just above it (30.5 C) rather than at the C1
  /// safety ceiling; set 0 to derive "ceiling - 4 K" instead.
  double hot_threshold_k = 303.65;
  /// Return to the battery below hot_threshold - band.
  double cool_band_k = 3.0;
  /// Keep at least this SoE [%] before abandoning UC-only mode.
  double min_soe_percent = 22.0;
  /// Recharge the bank when SoE falls below this while the battery is
  /// cool.
  double recharge_below_percent = 85.0;
  /// Only spend battery power on recharging while the EV load is below
  /// this threshold [W] — otherwise wait for a cheaper window (idle,
  /// cruise, regen). Regen always recharges the bank when it is below
  /// the recharge threshold.
  double recharge_load_max_w = 15000.0;

  /// Charge power pushed into the bank while recharging [W].
  double recharge_power_w = 12000.0;

  /// While venting, only route requests above this to the bank; light
  /// loads stay on the battery (they generate little I^2 R heat), so
  /// the bank's energy stretches across the damaging peaks.
  double vent_load_min_w = 8000.0;

  /// Read overrides with prefix "dual." from cfg.
  static DualPolicyParams from_config(const Config& cfg);
};

class DualMethodology final : public Methodology {
 public:
  DualMethodology(const SystemSpec& spec, DualPolicyParams policy = {});

  std::string name() const override { return "dual"; }

  void reset(const PlantState& initial,
             const TimeSeries& power_forecast) override;

  StepRecord step(PlantState& state, double p_e_w, size_t k,
                  double dt) override;

  /// Mode applied at the most recent step (telemetry for Fig. 1).
  hees::DualMode last_mode() const { return mode_; }

 private:
  hees::DualArchitecture arch_;
  thermal::CoolingSystem cooling_;
  DualPolicyParams policy_;
  double ambient_k_;
  hees::DualMode mode_ = hees::DualMode::kBatteryOnly;
  bool venting_ = false;  ///< true while in the UC-only thermal vent
};

}  // namespace otem::core
