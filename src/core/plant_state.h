// plant_state.h — the physical state every methodology evolves.
//
// Matches the paper's MPC state vector x = [T_b, T_c, SoE, SoC]
// (Algorithm 1, line 5); initial conditions x^0 = [298, 298, 100, 100].
#pragma once

namespace otem::core {

struct PlantState {
  double t_battery_k = 298.0;   ///< T_b
  double t_coolant_k = 298.0;   ///< T_c
  double soe_percent = 100.0;   ///< ultracapacitor State-of-Energy
  double soc_percent = 100.0;   ///< battery State-of-Charge
};

}  // namespace otem::core
