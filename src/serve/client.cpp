#include "serve/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "serve/codec.h"

namespace otem::serve {

std::string request_once(const std::string& socket_path,
                         const std::string& request_line, double timeout_s) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  OTEM_REQUIRE(fd >= 0, "client: cannot create socket");

  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  OTEM_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
               "client: socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  OTEM_REQUIRE(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "client: cannot connect to " + socket_path + ": " +
          std::strerror(errno));

  OTEM_REQUIRE(write_frame(fd, request_line),
               "client: send failed on " + socket_path);

  // Responses can take as long as the mission being simulated; poll in
  // short slices against the caller's overall budget.
  FrameReader reader(fd, 64u << 20);
  std::string line;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  for (;;) {
    const FrameReader::Status status = reader.next(line, 200);
    if (status == FrameReader::Status::kFrame) return line;
    OTEM_REQUIRE(status != FrameReader::Status::kEof &&
                     status != FrameReader::Status::kError,
                 "client: connection closed before a response arrived");
    OTEM_REQUIRE(std::chrono::steady_clock::now() < deadline,
                 "client: timed out waiting for a response from " +
                     socket_path);
  }
}

}  // namespace otem::serve
