#include "serve/client.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "common/json.h"
#include "serve/protocol.h"

namespace otem::serve {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// Bounded connect: non-blocking connect + poll(POLLOUT) + SO_ERROR,
/// so an unreachable TCP host fails in connect_timeout_s instead of
/// the kernel's multi-minute SYN retry budget. The fd is returned in
/// BLOCKING mode (write_frame does not speak EAGAIN).
void connect_bounded(int fd, const sockaddr* addr, socklen_t addr_len,
                     const std::string& endpoint, double connect_timeout_s) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  OTEM_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "client: cannot set " + endpoint +
                   " non-blocking: " + errno_text());
  if (::connect(fd, addr, addr_len) != 0) {
    OTEM_REQUIRE(errno == EINPROGRESS || errno == EAGAIN,
                 "client: cannot connect to " + endpoint + ": " +
                     errno_text());
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int timeout_ms =
        connect_timeout_s > 0
            ? static_cast<int>(std::ceil(connect_timeout_s * 1000.0))
            : -1;
    const int pr = ::poll(&pfd, 1, timeout_ms);
    OTEM_REQUIRE(pr > 0, pr == 0
                             ? "client: connect to " + endpoint +
                                   " timed out after " +
                                   std::to_string(connect_timeout_s) + " s"
                             : "client: connect poll on " + endpoint +
                                   " failed: " + errno_text());
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    OTEM_REQUIRE(
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) == 0,
        "client: getsockopt on " + endpoint + " failed: " + errno_text());
    OTEM_REQUIRE(so_error == 0, "client: cannot connect to " + endpoint +
                                    ": " + std::strerror(so_error));
  }
  OTEM_REQUIRE(::fcntl(fd, F_SETFL, flags) == 0,
               "client: cannot restore blocking mode on " + endpoint + ": " +
                   errno_text());
}

/// Create + connect a socket for `endpoint` (Unix path or TCP
/// host:port). Throws otem::SimError with strerror detail; the caller
/// owns the returned fd.
int connect_endpoint(const std::string& endpoint, double connect_timeout_s) {
  if (is_tcp_endpoint(endpoint)) {
    const size_t colon = endpoint.rfind(':');
    std::string host = endpoint.substr(0, colon);
    const long port = std::strtol(endpoint.c_str() + colon + 1, nullptr, 10);
    OTEM_REQUIRE(port > 0 && port <= 65535,
                 "client: bad TCP port in endpoint: " + endpoint);
    if (host.empty() || host == "localhost") host = "127.0.0.1";
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    OTEM_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                 "client: bad IPv4 host in endpoint: " + endpoint);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    OTEM_REQUIRE(fd >= 0, "client: cannot create socket: " + errno_text());
    try {
      connect_bounded(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                      endpoint, connect_timeout_s);
      // Session steps are one-line frames; never Nagle-delay them.
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    } catch (...) {
      ::close(fd);
      throw;
    }
    return fd;
  }

  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  OTEM_REQUIRE(endpoint.size() < sizeof(addr.sun_path),
               "client: socket path too long: " + endpoint);
  std::memcpy(addr.sun_path, endpoint.c_str(), endpoint.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  OTEM_REQUIRE(fd >= 0, "client: cannot create socket: " + errno_text());
  try {
    connect_bounded(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                    endpoint, connect_timeout_s);
  } catch (...) {
    ::close(fd);
    throw;
  }
  return fd;
}

}  // namespace

bool is_tcp_endpoint(const std::string& endpoint) {
  if (endpoint.find('/') != std::string::npos) return false;
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) return false;
  for (size_t i = colon + 1; i < endpoint.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(endpoint[i])) == 0)
      return false;
  }
  return true;
}

Connection::Connection(const std::string& endpoint, double connect_timeout_s)
    : endpoint_(endpoint),
      fd_(connect_endpoint(endpoint, connect_timeout_s)),
      reader_(fd_, 64u << 20) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

Connection::Connection(Connection&& other) noexcept
    : endpoint_(std::move(other.endpoint_)),
      fd_(other.fd_),
      reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    endpoint_ = std::move(other.endpoint_);
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

std::string Connection::roundtrip(const std::string& request_line,
                                  double timeout_s) {
  OTEM_REQUIRE(fd_ >= 0, "client: connection to " + endpoint_ +
                             " is closed (moved-from?)");
  OTEM_REQUIRE(write_frame(fd_, request_line),
               "client: send failed on " + endpoint_ + ": " + errno_text());

  // Responses can take as long as the mission being simulated; poll in
  // short slices against the caller's overall budget.
  std::string line;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  for (;;) {
    const FrameReader::Status status = reader_.next(line, 200);
    if (status == FrameReader::Status::kFrame) return line;
    OTEM_REQUIRE(status != FrameReader::Status::kOversized,
                 "client: oversized response frame from " + endpoint_);
    OTEM_REQUIRE(status != FrameReader::Status::kEof &&
                     status != FrameReader::Status::kError,
                 "client: connection to " + endpoint_ +
                     " closed before a response arrived");
    OTEM_REQUIRE(
        std::chrono::steady_clock::now() < deadline,
        "client: timed out waiting for a response from " + endpoint_);
  }
}

std::string request_once(const std::string& endpoint,
                         const std::string& request_line, double timeout_s,
                         double connect_timeout_s) {
  Connection connection(endpoint, connect_timeout_s);
  return connection.roundtrip(request_line, timeout_s);
}

double retry_backoff_s(const RetryOptions& options, size_t retry) {
  const double raw = options.initial_backoff_s *
                     std::pow(options.multiplier, static_cast<double>(retry));
  return std::min(raw, options.max_backoff_s);
}

bool is_overloaded_response(const std::string& response_line) {
  Json doc;
  try {
    doc = Json::parse(response_line);
  } catch (const SimError&) {
    return false;
  }
  if (!doc.is_object()) return false;
  const Json* error = doc.find("error");
  return error != nullptr && error->is_string() &&
         error->as_string() == to_string(ErrorCode::kOverloaded);
}

std::string request_with_retry(
    const std::function<std::string(const std::string&)>& transport,
    const std::string& request_line, const RetryOptions& options,
    obs::MetricsRegistry* metrics, const std::function<void(double)>& sleep_s) {
  const size_t attempts = options.max_attempts > 0 ? options.max_attempts : 1;
  std::string response;
  for (size_t attempt = 0;; ++attempt) {
    response = transport(request_line);
    if (!is_overloaded_response(response) || attempt + 1 >= attempts)
      return response;
    if (metrics != nullptr) metrics->counter("serve.client_retries").add(1);
    const double delay = retry_backoff_s(options, attempt);
    if (sleep_s) {
      sleep_s(delay);
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
}

std::string request_with_retry(const std::string& endpoint,
                               const std::string& request_line,
                               double timeout_s, const RetryOptions& options,
                               obs::MetricsRegistry* metrics,
                               double connect_timeout_s) {
  return request_with_retry(
      [&](const std::string& line) {
        return request_once(endpoint, line, timeout_s, connect_timeout_s);
      },
      request_line, options, metrics);
}

}  // namespace otem::serve
