#include "serve/client.h"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "common/json.h"
#include "serve/codec.h"
#include "serve/protocol.h"

namespace otem::serve {

std::string request_once(const std::string& socket_path,
                         const std::string& request_line, double timeout_s) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  OTEM_REQUIRE(fd >= 0, "client: cannot create socket");

  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  OTEM_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
               "client: socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  OTEM_REQUIRE(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "client: cannot connect to " + socket_path + ": " +
          std::strerror(errno));

  OTEM_REQUIRE(write_frame(fd, request_line),
               "client: send failed on " + socket_path);

  // Responses can take as long as the mission being simulated; poll in
  // short slices against the caller's overall budget.
  FrameReader reader(fd, 64u << 20);
  std::string line;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  for (;;) {
    const FrameReader::Status status = reader.next(line, 200);
    if (status == FrameReader::Status::kFrame) return line;
    OTEM_REQUIRE(status != FrameReader::Status::kEof &&
                     status != FrameReader::Status::kError,
                 "client: connection closed before a response arrived");
    OTEM_REQUIRE(std::chrono::steady_clock::now() < deadline,
                 "client: timed out waiting for a response from " +
                     socket_path);
  }
}

double retry_backoff_s(const RetryOptions& options, size_t retry) {
  const double raw = options.initial_backoff_s *
                     std::pow(options.multiplier, static_cast<double>(retry));
  return std::min(raw, options.max_backoff_s);
}

bool is_overloaded_response(const std::string& response_line) {
  Json doc;
  try {
    doc = Json::parse(response_line);
  } catch (const SimError&) {
    return false;
  }
  if (!doc.is_object()) return false;
  const Json* error = doc.find("error");
  return error != nullptr && error->is_string() &&
         error->as_string() == to_string(ErrorCode::kOverloaded);
}

std::string request_with_retry(
    const std::function<std::string(const std::string&)>& transport,
    const std::string& request_line, const RetryOptions& options,
    obs::MetricsRegistry* metrics, const std::function<void(double)>& sleep_s) {
  const size_t attempts = options.max_attempts > 0 ? options.max_attempts : 1;
  std::string response;
  for (size_t attempt = 0;; ++attempt) {
    response = transport(request_line);
    if (!is_overloaded_response(response) || attempt + 1 >= attempts)
      return response;
    if (metrics != nullptr) metrics->counter("serve.client_retries").add(1);
    const double delay = retry_backoff_s(options, attempt);
    if (sleep_s) {
      sleep_s(delay);
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
}

std::string request_with_retry(const std::string& socket_path,
                               const std::string& request_line,
                               double timeout_s, const RetryOptions& options,
                               obs::MetricsRegistry* metrics) {
  return request_with_retry(
      [&](const std::string& line) {
        return request_once(socket_path, line, timeout_s);
      },
      request_line, options, metrics);
}

}  // namespace otem::serve
