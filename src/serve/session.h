// session.h — resident mission sessions for the serve daemon.
//
// A Session pins everything one streamed mission needs between protocol
// frames: the resolved SystemSpec, the route power trace (the
// controller's forecast P_hat_e), a resident core::Methodology and the
// live PlantState. session.step then costs exactly one
// Methodology::step() — for otem-ltv that means the QP warm start and
// KKT factorization carried inside LtvOtemController survive ACROSS
// protocol steps, which is what makes a streamed control decision
// sub-millisecond where a one-shot `run` request pays a cold solve.
// A MetricsAccumulator rides along, so session.close returns the same
// report shape a batch run would have produced for the steps streamed.
//
// SessionManager owns the resident table: ids are server-assigned
// ("s1", "s2", ...), lookups touch an LRU list, and eviction is
// LRU-with-TTL — every access first retires sessions idle longer than
// ttl_s, then evicts from the cold end until the table fits
// max_sessions. An evicted or closed id simply stops resolving
// (kUnknownSession); a step already executing on an evicted session
// finishes safely on its shared_ptr. Instruments land in the registry
// handed to the constructor: serve.sessions_active (gauge),
// serve.sessions_evicted / serve.sessions_opened / serve.sessions_closed
// (counters).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/config.h"
#include "common/timeseries.h"
#include "core/methodology.h"
#include "core/system_spec.h"
#include "obs/metrics.h"
#include "sim/scenario.h"
#include "sim/simulator.h"
#include "sim/step_sink.h"

namespace otem::serve {

/// One resident mission (see header comment). Thread-safe: step() and
/// close() serialize on an internal mutex, so a session id misused from
/// two connections degrades to in-order execution, never a race.
class Session {
 public:
  /// Builds the spec, route trace and methodology from the same
  /// scenario/config vocabulary `run` uses, then resets the methodology
  /// with the full route as its forecast. Throws otem::SimError on any
  /// invalid configuration (the server maps that to kBadRequest).
  Session(std::string id, const sim::Scenario& scenario, const Config& cfg);

  const std::string& id() const { return id_; }
  const std::string& methodology() const { return methodology_name_; }
  double dt() const { return dt_; }
  size_t route_steps() const { return power_.size(); }

  struct StepOutcome {
    size_t k = 0;             ///< step index that was just executed
    double p_request_w = 0.0; ///< the request actually served
    core::StepRecord rec;
  };

  /// Execute one plant step. `has_p` supplies an explicit power request
  /// (deviating from the forecast, as real traffic does); otherwise the
  /// session serves the next value of its own route trace. Throws
  /// otem::SimError once the route is exhausted and no explicit request
  /// is given.
  StepOutcome step(bool has_p, double p_request_w);

  /// Finalize the accumulated report over the steps streamed so far.
  /// The session is unusable afterwards (the manager removes it first).
  sim::RunResult close();

  size_t steps_done() const;

 private:
  std::string id_;
  std::string methodology_name_;
  core::SystemSpec spec_;
  double dt_ = 1.0;
  TimeSeries power_;
  std::unique_ptr<core::Methodology> methodology_;
  core::PlantState state_;
  sim::MetricsAccumulator metrics_;
  size_t k_ = 0;
  mutable std::mutex mutex_;
};

struct SessionLimits {
  /// Resident-session ceiling; opening past it evicts the LRU session.
  size_t max_sessions = 64;
  /// Idle time after which a session is evictable [s]; 0 disables the
  /// TTL sweep (LRU capacity eviction still applies).
  double ttl_s = 300.0;
};

class SessionManager {
 public:
  SessionManager(const SessionLimits& limits, obs::MetricsRegistry& registry);

  /// The next server-assigned session id ("s1", "s2", ...); unique for
  /// the server's lifetime even when the insert that follows fails.
  std::string next_id();

  /// Make `session` resident under its id, evicting expired + LRU
  /// sessions to fit. False when max_sessions == 0 (sessions disabled).
  bool insert(std::shared_ptr<Session> session);

  /// Resolve an id and mark it most-recently-used; nullptr when the id
  /// is not resident (never opened, closed, or evicted).
  std::shared_ptr<Session> find(const std::string& id);

  /// Remove an id for session.close; nullptr when not resident.
  std::shared_ptr<Session> remove(const std::string& id);

  /// Drop every resident session (drain path; not counted as
  /// evictions).
  void clear();

  size_t active() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    std::shared_ptr<Session> session;
    Clock::time_point last_used;
    std::list<std::string>::iterator lru_pos;
  };

  /// Retire TTL-expired entries, then LRU-evict until `headroom` slots
  /// are free. Caller holds mutex_.
  void evict_locked(size_t headroom);
  void erase_locked(const std::string& id);

  SessionLimits limits_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< most-recently-used at front
  std::atomic<std::uint64_t> next_id_{1};

  obs::Gauge& active_gauge_;
  obs::Counter& opened_;
  obs::Counter& closed_;
  obs::Counter& evicted_;
};

}  // namespace otem::serve
