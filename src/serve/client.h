// client.h — minimal synchronous client for the serve protocol.
//
// Connects to a daemon endpoint — a Unix-domain socket path or a TCP
// "host:port" (see is_tcp_endpoint for the disambiguation rule) — sends
// otem.serve.v1 request frames and waits for the matching response
// frame (the protocol is strictly one-response-per-request in order, so
// no correlation machinery is needed). This is what `otem_cli request`
// wraps; it is also handy for integration tests and scripting.
//
// Two shapes:
//   request_once / request_with_retry — one connection per request;
//       right for fire-and-forget `run` queries and the campaign
//       fabric, where the daemon's result cache makes reconnects cheap.
//   Connection — a persistent socket plus its reusable read buffer;
//       REQUIRED for mission sessions (session.open/step/close must all
//       ride one logical client) and what the loadtest harness drives,
//       since a sub-millisecond session.step would otherwise drown in
//       per-request connect cost.
//
// Every transport failure throws otem::SimError whose message carries
// the endpoint and strerror(errno), and connects are bounded by an
// explicit connect timeout (non-blocking connect + poll) instead of the
// kernel's multi-minute TCP default.
//
// The daemon sheds load by answering {"error":"overloaded"} instead of
// queueing unbounded work — a refusal the client is EXPECTED to absorb.
// request_with_retry() does exactly that: capped exponential backoff on
// overload refusals, every retry counted under "serve.client_retries"
// in the caller's otem.metrics.v1 registry. The campaign runner's
// serve-fabric dispatch and `otem_cli request` both route through it.
#pragma once

#include <functional>
#include <string>

#include "obs/metrics.h"
#include "serve/codec.h"

namespace otem::serve {

/// True when `endpoint` names a TCP listener rather than a Unix socket
/// path: it contains no '/' and ends in ":<digits>" (e.g.
/// "127.0.0.1:7600", "localhost:0"). Anything with a slash — including
/// "./sock:1" — is a filesystem path. Exposed for tests.
bool is_tcp_endpoint(const std::string& endpoint);

/// A persistent client connection: one socket, one frame buffer reused
/// across responses. Construct with a Unix socket path or TCP
/// "host:port"; the connect is bounded by `connect_timeout_s`. Not
/// thread-safe (the protocol is in-order per connection anyway) and not
/// copyable; movable so callers can keep one per worker in a vector.
class Connection {
 public:
  explicit Connection(const std::string& endpoint,
                      double connect_timeout_s = 5.0);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;

  /// Send one request frame and wait up to `timeout_s` for its response
  /// frame. Throws otem::SimError on send failure, a dropped
  /// connection, an oversized response, or timeout.
  std::string roundtrip(const std::string& request_line,
                        double timeout_s = 30.0);

  const std::string& endpoint() const { return endpoint_; }
  int fd() const { return fd_; }

 private:
  std::string endpoint_;
  int fd_ = -1;
  FrameReader reader_;
};

/// Send `request_line` (no trailing newline) to the daemon at
/// `endpoint` (Unix path or TCP host:port) and return the raw response
/// line. Throws otem::SimError on connect/send failure, a dropped
/// connection, or when no complete response arrives within `timeout_s`;
/// failure messages include strerror(errno).
std::string request_once(const std::string& endpoint,
                         const std::string& request_line,
                         double timeout_s = 30.0,
                         double connect_timeout_s = 5.0);

/// Backoff policy for overload refusals.
struct RetryOptions {
  /// Total attempts (first try included); 1 disables retrying.
  size_t max_attempts = 6;
  double initial_backoff_s = 0.05;
  /// Delay multiplier per retry, capped at max_backoff_s.
  double multiplier = 2.0;
  double max_backoff_s = 2.0;
};

/// The delay before retry number `retry` (0-based): initial * mult^retry,
/// capped. Exposed for tests.
double retry_backoff_s(const RetryOptions& options, size_t retry);

/// True when `response_line` is a well-formed otem.serve.v1 error frame
/// with code "overloaded" — the only refusal worth retrying (draining
/// and bad requests will not get better). Exposed for tests.
bool is_overloaded_response(const std::string& response_line);

/// request_once + retry on {"error":"overloaded"} with capped
/// exponential backoff. Other responses (success or error) return
/// as-is; transport failures still throw. When `metrics` is non-null
/// every retry increments its "serve.client_retries" counter.
std::string request_with_retry(const std::string& endpoint,
                               const std::string& request_line,
                               double timeout_s = 30.0,
                               const RetryOptions& options = {},
                               obs::MetricsRegistry* metrics = nullptr,
                               double connect_timeout_s = 5.0);

/// Transport-free core of request_with_retry, for tests and custom
/// transports: `transport` maps one request line to one response line;
/// `sleep_s` replaces the real clock when provided.
std::string request_with_retry(
    const std::function<std::string(const std::string&)>& transport,
    const std::string& request_line, const RetryOptions& options,
    obs::MetricsRegistry* metrics = nullptr,
    const std::function<void(double)>& sleep_s = {});

}  // namespace otem::serve
