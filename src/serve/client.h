// client.h — minimal synchronous client for the serve protocol.
//
// Connects to a daemon's Unix-domain socket, sends one otem.serve.v1
// request frame and waits for the matching response frame (the protocol
// is strictly one-response-per-request in order, so no correlation
// machinery is needed). This is what `otem_cli request` wraps; it is
// also handy for integration tests and scripting.
//
// The daemon sheds load by answering {"error":"overloaded"} instead of
// queueing unbounded work — a refusal the client is EXPECTED to absorb.
// request_with_retry() does exactly that: capped exponential backoff on
// overload refusals, every retry counted under "serve.client_retries"
// in the caller's otem.metrics.v1 registry. The campaign runner's
// serve-fabric dispatch and `otem_cli request` both route through it.
#pragma once

#include <functional>
#include <string>

#include "obs/metrics.h"

namespace otem::serve {

/// Send `request_line` (no trailing newline) to the daemon at
/// `socket_path` and return the raw response line. Throws
/// otem::SimError on connect/send failure, a dropped connection, or
/// when no complete response arrives within `timeout_s`.
std::string request_once(const std::string& socket_path,
                         const std::string& request_line,
                         double timeout_s = 30.0);

/// Backoff policy for overload refusals.
struct RetryOptions {
  /// Total attempts (first try included); 1 disables retrying.
  size_t max_attempts = 6;
  double initial_backoff_s = 0.05;
  /// Delay multiplier per retry, capped at max_backoff_s.
  double multiplier = 2.0;
  double max_backoff_s = 2.0;
};

/// The delay before retry number `retry` (0-based): initial * mult^retry,
/// capped. Exposed for tests.
double retry_backoff_s(const RetryOptions& options, size_t retry);

/// True when `response_line` is a well-formed otem.serve.v1 error frame
/// with code "overloaded" — the only refusal worth retrying (draining
/// and bad requests will not get better). Exposed for tests.
bool is_overloaded_response(const std::string& response_line);

/// request_once + retry on {"error":"overloaded"} with capped
/// exponential backoff. Other responses (success or error) return
/// as-is; transport failures still throw. When `metrics` is non-null
/// every retry increments its "serve.client_retries" counter.
std::string request_with_retry(const std::string& socket_path,
                               const std::string& request_line,
                               double timeout_s = 30.0,
                               const RetryOptions& options = {},
                               obs::MetricsRegistry* metrics = nullptr);

/// Transport-free core of request_with_retry, for tests and custom
/// transports: `transport` maps one request line to one response line;
/// `sleep_s` replaces the real clock when provided.
std::string request_with_retry(
    const std::function<std::string(const std::string&)>& transport,
    const std::string& request_line, const RetryOptions& options,
    obs::MetricsRegistry* metrics = nullptr,
    const std::function<void(double)>& sleep_s = {});

}  // namespace otem::serve
