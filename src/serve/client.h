// client.h — minimal synchronous client for the serve protocol.
//
// Connects to a daemon's Unix-domain socket, sends one otem.serve.v1
// request frame and waits for the matching response frame (the protocol
// is strictly one-response-per-request in order, so no correlation
// machinery is needed). This is what `otem_cli request` wraps; it is
// also handy for integration tests and scripting.
#pragma once

#include <string>

namespace otem::serve {

/// Send `request_line` (no trailing newline) to the daemon at
/// `socket_path` and return the raw response line. Throws
/// otem::SimError on connect/send failure, a dropped connection, or
/// when no complete response arrives within `timeout_s`.
std::string request_once(const std::string& socket_path,
                         const std::string& request_line,
                         double timeout_s = 30.0);

}  // namespace otem::serve
