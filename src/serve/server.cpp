#include "serve/server.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "common/logging.h"
#include "core/methodology_registry.h"
#include "core/system_spec.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "serve/codec.h"
#include "sim/report.h"
#include "sim/scenario.h"

namespace otem::serve {

namespace {

/// Signal plumbing must be async-signal-safe: the handler only flips a
/// flag and writes one byte to the self-pipe to wake a poll(). The
/// serving loops translate the flag into an orderly drain.
std::atomic<bool> g_signal_stop{false};
std::atomic<int> g_wake_fd{-1};

void on_stop_signal(int) {
  g_signal_stop.store(true, std::memory_order_relaxed);
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

struct SignalGuard {
  SignalGuard() {
    g_signal_stop.store(false, std::memory_order_relaxed);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = on_stop_signal;
    ::sigaction(SIGINT, &sa, &old_int);
    ::sigaction(SIGTERM, &sa, &old_term);
    // A client that hangs up mid-response must not kill the daemon.
    struct sigaction ign;
    std::memset(&ign, 0, sizeof(ign));
    ign.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ign, &old_pipe);
  }
  ~SignalGuard() {
    ::sigaction(SIGINT, &old_int, nullptr);
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGPIPE, &old_pipe, nullptr);
    g_wake_fd.store(-1, std::memory_order_relaxed);
  }
  struct sigaction old_int{}, old_term{}, old_pipe{};
};

/// Overrides that name server-side output files are refused: a cached
/// replay would skip the side effect, silently breaking the contract
/// that identical requests are interchangeable.
bool is_output_override(const std::string& key) {
  return key == "trace_csv" || key == "metrics_out" ||
         key == "events_jsonl" || key == "report_json" ||
         key == "record_trace" || key == "trace_out";
}

/// One quantile-sketch snapshot as the `stats` method reports it.
Json sketch_stats_json(const obs::Sketch::Snapshot& s) {
  Json j = Json::object();
  j.set("count", static_cast<double>(s.count));
  j.set("mean", s.count ? s.sum / static_cast<double>(s.count) : 0.0);
  j.set("min", s.min);
  j.set("max", s.max);
  j.set("p50", s.p50);
  j.set("p95", s.p95);
  j.set("p99", s.p99);
  j.set("p999", s.p999);
  return j;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(options.cache_bytes, registry_),
      run_instruments_(registry_),
      pool_(std::make_unique<exec::ThreadPool>(options.threads)),
      latency_us_(registry_.histogram("serve.request.latency_us",
                                      obs::latency_buckets_us())),
      queue_wait_us_(registry_.histogram("serve.queue.wait_us",
                                         obs::latency_buckets_us())),
      latency_sketch_(registry_.sketch("serve.request.latency_us")),
      queue_wait_sketch_(registry_.sketch("serve.queue.wait_us")),
      queue_depth_(registry_.gauge("serve.queue.depth")) {
  for (const std::string& key : options_.base.keys())
    base_pairs_.emplace_back(key, options_.base.get_string(key, ""));
  if (!options_.trace_out.empty()) obs::set_trace_enabled(true);
}

bool Server::stopping() const {
  return stop_.load(std::memory_order_relaxed) ||
         g_signal_stop.load(std::memory_order_relaxed);
}

void Server::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  const int fd = wake_write_fd_;
  if (fd >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

bool Server::try_admit() {
  size_t cur = admitted_.load(std::memory_order_relaxed);
  do {
    if (cur >= options_.queue_depth) return false;
  } while (!admitted_.compare_exchange_weak(cur, cur + 1,
                                            std::memory_order_acq_rel));
  queue_depth_.set(static_cast<double>(cur + 1));
  return true;
}

void Server::release_admission() {
  const size_t now = admitted_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  queue_depth_.set(static_cast<double>(now));
}

std::uint64_t Server::register_inflight(const exec::StopSource& source) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  const std::uint64_t id = next_inflight_id_++;
  inflight_.emplace(id, source);
  // Close the admit/drain race: a request that slipped past the
  // stopping() check while drain() was sweeping in-flight tokens would
  // otherwise run to completion unobserved by the cancel pass.
  if (stopping()) source.request_stop();
  return id;
}

void Server::unregister_inflight(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  inflight_.erase(id);
}

size_t Server::active_requests() const {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  return inflight_.size();
}

std::string Server::error_response(const Json& id, ErrorCode code,
                                   const std::string& message) {
  registry_.counter(std::string("serve.errors.") + to_string(code)).add();
  return build_error_response(id, code, message);
}

std::string Server::oversized_response() {
  return error_response(
      Json(), ErrorCode::kOversizedFrame,
      "frame exceeds " + std::to_string(options_.max_frame_bytes) +
          " bytes");
}

std::string Server::handle_line(const std::string& line) {
  const obs::TraceSpan request_span("serve.request");
  const double t0 = obs::now_us();
  Request req;
  try {
    const obs::TraceSpan parse_span("serve.parse");
    req = parse_request(line);
  } catch (const SimError& e) {
    return error_response(Json(), ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    return error_response(Json(), ErrorCode::kInternal, e.what());
  }

  registry_.counter("serve.requests." + req.method).add();

  try {
    if (req.method == "ping") {
      Json result = Json::object();
      result.set("pong", true);
      return build_ok_response(req.id, false, result.dump(0));
    }
    if (req.method == "metrics") {
      return build_ok_response(
          req.id, false, obs::snapshot_to_json(registry_.snapshot()).dump(0));
    }
    if (req.method == "stats") {
      // Live introspection: exact latency / queue-wait quantiles from
      // the sketches, plus per-name aggregates of the spans still in
      // the flight-recorder rings (empty unless tracing is enabled).
      Json result = Json::object();
      result.set("latency_us", sketch_stats_json(latency_sketch_.snapshot()));
      result.set("queue_wait_us",
                 sketch_stats_json(queue_wait_sketch_.snapshot()));
      Json spans = Json::object();
      for (const obs::TraceCollector::SpanSummary& s :
           obs::TraceCollector().summaries()) {
        Json sj = Json::object();
        sj.set("count", static_cast<double>(s.count));
        sj.set("total_us", s.total_us);
        sj.set("max_us", s.max_us);
        spans.set(s.name, std::move(sj));
      }
      result.set("spans", std::move(spans));
      return build_ok_response(req.id, false, result.dump(0));
    }
    if (req.method == "methods") {
      Json names = Json::array();
      for (const std::string& name :
           core::MethodologyRegistry::instance().names())
        names.push(name);
      Json result = Json::object();
      result.set("methods", std::move(names));
      return build_ok_response(req.id, false, result.dump(0));
    }
    if (req.method == "run") {
      // Latency is recorded HERE, on every completion path (success,
      // cache hit, refusal, error) — and t0 is taken at frame entry, so
      // it always includes queue wait and parse time.
      const std::string response = handle_run(req);
      const double latency = obs::now_us() - t0;
      latency_us_.record(latency);
      latency_sketch_.record(latency);
      return response;
    }
  } catch (const std::exception& e) {
    return error_response(req.id, ErrorCode::kInternal, e.what());
  }
  return error_response(req.id, ErrorCode::kUnknownMethod,
                        "unknown method '" + req.method + "'");
}

std::string Server::handle_run(const Request& req) {
  // A private Config per request: base pairs first, then the request's
  // overrides on top. Never share a Config across sessions — copies
  // share their consumed-key set, which concurrent reads would race on.
  Config merged;
  for (const auto& [key, value] : base_pairs_) merged.set(key, value);
  for (const auto& [key, value] : req.overrides) {
    if (is_output_override(key)) {
      return error_response(req.id, ErrorCode::kBadRequest,
                            "override '" + key +
                                "' is not allowed in serve mode (results "
                                "are returned in the response)");
    }
    merged.set(key, value);
  }

  sim::Scenario scenario;
  try {
    scenario = sim::Scenario::from_config(merged);
  } catch (const SimError& e) {
    return error_response(req.id, ErrorCode::kBadRequest, e.what());
  }
  // Serve-mode scenarios never record or stream server-side: the
  // response carries the report, and cache hits must be side-effect
  // free.
  scenario.record_trace = false;
  scenario.trace_csv.clear();
  scenario.metrics_out.clear();
  scenario.events_jsonl.clear();

  const std::string cache_key = canonical_scenario_key(scenario, merged);

  bool claimed = false;
  if (!req.cache_bypass) {
    if (std::optional<std::string> hit = cache_.lookup_or_begin(cache_key))
      return build_ok_response(req.id, true, *hit);
    claimed = true;
  }

  if (stopping()) {
    if (claimed) cache_.abandon(cache_key);
    return error_response(req.id, ErrorCode::kDraining,
                          "server is draining, not accepting new work");
  }
  if (!try_admit()) {
    if (claimed) cache_.abandon(cache_key);
    return error_response(req.id, ErrorCode::kOverloaded,
                          "admission queue full (queue_depth=" +
                              std::to_string(options_.queue_depth) +
                              "), retry with backoff");
  }

  exec::StopSource source =
      req.deadline_ms > 0.0
          ? exec::StopSource::with_deadline(
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(
                    static_cast<long long>(req.deadline_ms * 1000.0)))
          : exec::StopSource();
  const std::uint64_t inflight_id = register_inflight(source);

  std::string result_json;
  const exec::StopToken token = source.token();
  const obs::TraceSpan dispatch_span("serve.dispatch");
  const double enqueued_us = obs::now_us();
  exec::TaskHandle handle = pool_->submit([&] {
    const double wait_us = obs::now_us() - enqueued_us;
    queue_wait_us_.record(wait_us);
    queue_wait_sketch_.record(wait_us);
    obs::trace_emit("serve.queue_wait", enqueued_us, wait_us);
    const obs::TraceSpan run_span("serve.run");
    const core::SystemSpec spec = core::SystemSpec::from_config(merged);
    // Aggregate this run's sim/solver telemetry into the server
    // registry: the metrics method then reports warm-start hits,
    // ADMM iteration distributions etc. across every served run.
    sim::DiagnosticsSink diagnostics(run_instruments_);
    const sim::ScenarioOutcome outcome =
        sim::run_scenario(scenario, spec, merged, {&diagnostics}, token);
    Json result = Json::object();
    result.set("methodology", scenario.methodology);
    result.set("steps", outcome.power.size());
    result.set("distance_m", outcome.distance_m);
    result.set("report", sim::run_result_to_json(outcome.result));
    result_json = result.dump(0);
  });

  std::string response;
  try {
    handle.wait();
    if (claimed) cache_.fill(cache_key, result_json);
    response = build_ok_response(req.id, false, result_json);
  } catch (const SimCancelled& e) {
    if (claimed) cache_.abandon(cache_key);
    response = error_response(req.id,
                              token.deadline_expired()
                                  ? ErrorCode::kDeadlineExceeded
                                  : ErrorCode::kCancelled,
                              e.what());
  } catch (const SimError& e) {
    if (claimed) cache_.abandon(cache_key);
    response = error_response(req.id, ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    if (claimed) cache_.abandon(cache_key);
    response = error_response(req.id, ErrorCode::kInternal, e.what());
  }
  unregister_inflight(inflight_id);
  release_admission();
  return response;
}

void Server::session_loop(int in_fd, int out_fd) {
  FrameReader reader(in_fd, options_.max_frame_bytes);
  std::string line;
  for (;;) {
    const FrameReader::Status status = reader.next(line, 200);
    if (status == FrameReader::Status::kEof ||
        status == FrameReader::Status::kError)
      return;
    if (status == FrameReader::Status::kNoData) {
      if (stopping()) return;
      continue;
    }
    const std::string response = status == FrameReader::Status::kOversized
                                     ? oversized_response()
                                     : handle_line(line);
    if (!write_frame(out_fd, response)) return;
  }
}

void Server::drain() {
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<double>(
                             options_.drain_timeout_s));
  // Phase 1: give in-flight work the drain window to finish naturally.
  while (active_requests() > 0 && clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

  // Phase 2: cancel the stragglers through their stop tokens; the
  // per-step check in the simulator unwinds them within one step.
  size_t cancelled = 0;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    for (auto& [id, source] : inflight_) {
      source.request_stop();
      ++cancelled;
    }
  }
  if (cancelled > 0)
    log::info("serve: drain timeout, cancelled ", cancelled,
              " in-flight request(s)");
  while (active_requests() > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

void Server::shutdown_flush() {
  const obs::MetricsSnapshot snap = registry_.snapshot();
  const auto count = [&](const char* name) {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? std::uint64_t{0} : it->second;
  };
  log::info("serve: shutting down — requests=",
            count("serve.requests.run"), " cache_hits=",
            count("serve.cache.hits"), " cache_misses=",
            count("serve.cache.misses"));
  if (!options_.metrics_out.empty()) {
    try {
      obs::write_metrics_json(options_.metrics_out, registry_);
      log::info("serve: final metrics snapshot written to ",
                options_.metrics_out);
    } catch (const std::exception& e) {
      log::error("serve: failed to flush metrics snapshot: ", e.what());
    }
  }
  if (!options_.trace_out.empty()) {
    try {
      obs::TraceCollector().write_chrome_trace(options_.trace_out);
      log::info("serve: trace written to ", options_.trace_out);
    } catch (const std::exception& e) {
      log::error("serve: failed to write trace: ", e.what());
    }
  }
}

int Server::serve_stdio(int in_fd, int out_fd) {
  SignalGuard signals;
  session_loop(in_fd, out_fd);
  request_stop();
  drain();
  shutdown_flush();
  return 0;
}

int Server::serve_unix(const std::string& socket_path) {
  SignalGuard signals;

  int wake[2] = {-1, -1};
  OTEM_REQUIRE(::pipe(wake) == 0, "serve: cannot create wake pipe");
  ::fcntl(wake[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake[1], F_SETFL, O_NONBLOCK);
  wake_write_fd_ = wake[1];
  g_wake_fd.store(wake[1], std::memory_order_relaxed);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  OTEM_REQUIRE(listen_fd >= 0, "serve: cannot create socket");

  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  OTEM_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
               "serve: socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  // A stale socket file from a crashed daemon would block the bind;
  // remove it. A LIVE daemon on the path loses its socket too — the
  // deployment owns the path, as with any pid/socket file.
  ::unlink(socket_path.c_str());
  OTEM_REQUIRE(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "serve: cannot bind " + socket_path + ": " +
                   std::strerror(errno));
  OTEM_REQUIRE(::listen(listen_fd, 64) == 0,
               "serve: cannot listen on " + socket_path);

  log::info("serve: listening on ", socket_path, " (threads=",
            pool_->thread_count(), " queue_depth=", options_.queue_depth,
            " cache_bytes=", options_.cache_bytes, ")");

  obs::Counter& connections = registry_.counter("serve.connections");
  while (!stopping()) {
    struct pollfd pfds[2];
    pfds[0] = {listen_fd, POLLIN, 0};
    pfds[1] = {wake[0], POLLIN, 0};
    const int pr = ::poll(pfds, 2, 500);
    if (pr <= 0) continue;  // timeout or EINTR: re-check stopping()
    if (pfds[1].revents != 0) continue;  // woken for shutdown
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) continue;
    connections.add();
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      ++open_sessions_;
    }
    std::thread([this, client_fd] {
      session_loop(client_fd, client_fd);
      ::close(client_fd);
      {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        --open_sessions_;
      }
      sessions_done_.notify_all();
    }).detach();
  }

  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  request_stop();  // make stopping() true for sessions even on signal path
  drain();
  {
    // Sessions exit within one poll interval of stopping(); in-flight
    // work was finished or cancelled by drain() above.
    std::unique_lock<std::mutex> lock(sessions_mutex_);
    sessions_done_.wait(lock, [&] { return open_sessions_ == 0; });
  }
  wake_write_fd_ = -1;
  ::close(wake[0]);
  ::close(wake[1]);
  shutdown_flush();
  return 0;
}

}  // namespace otem::serve
