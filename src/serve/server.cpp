#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "common/logging.h"
#include "core/methodology_registry.h"
#include "core/system_spec.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "serve/codec.h"
#include "sim/report.h"
#include "sim/scenario.h"

namespace otem::serve {

namespace {

/// Signal plumbing must be async-signal-safe: the handler only flips a
/// flag and writes one byte to the self-pipe to wake a poll(). The
/// serving loops translate the flag into an orderly drain.
std::atomic<bool> g_signal_stop{false};
std::atomic<int> g_wake_fd{-1};

void on_stop_signal(int) {
  g_signal_stop.store(true, std::memory_order_relaxed);
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

struct SignalGuard {
  SignalGuard() {
    g_signal_stop.store(false, std::memory_order_relaxed);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = on_stop_signal;
    ::sigaction(SIGINT, &sa, &old_int);
    ::sigaction(SIGTERM, &sa, &old_term);
    // A client that hangs up mid-response must not kill the daemon.
    struct sigaction ign;
    std::memset(&ign, 0, sizeof(ign));
    ign.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ign, &old_pipe);
  }
  ~SignalGuard() {
    ::sigaction(SIGINT, &old_int, nullptr);
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGPIPE, &old_pipe, nullptr);
    g_wake_fd.store(-1, std::memory_order_relaxed);
  }
  struct sigaction old_int{}, old_term{}, old_pipe{};
};

/// Overrides that name server-side output files are refused: a cached
/// replay would skip the side effect, silently breaking the contract
/// that identical requests are interchangeable.
bool is_output_override(const std::string& key) {
  return key == "trace_csv" || key == "metrics_out" ||
         key == "events_jsonl" || key == "report_json" ||
         key == "record_trace" || key == "trace_out";
}

/// One quantile-sketch snapshot as the `stats` method reports it.
Json sketch_stats_json(const obs::Sketch::Snapshot& s) {
  Json j = Json::object();
  j.set("count", static_cast<double>(s.count));
  j.set("mean", s.count ? s.sum / static_cast<double>(s.count) : 0.0);
  j.set("min", s.min);
  j.set("max", s.max);
  j.set("p50", s.p50);
  j.set("p95", s.p95);
  j.set("p99", s.p99);
  j.set("p999", s.p999);
  return j;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(options.cache_bytes, std::max<size_t>(options.workers, 1),
             registry_),
      sessions_(SessionLimits{options.session_limit, options.session_ttl_s},
                registry_),
      run_instruments_(registry_),
      pool_(std::make_unique<exec::ThreadPool>(options.threads)),
      latency_us_(registry_.histogram("serve.request.latency_us",
                                      obs::latency_buckets_us())),
      queue_wait_us_(registry_.histogram("serve.queue.wait_us",
                                         obs::latency_buckets_us())),
      latency_sketch_(registry_.sketch("serve.request.latency_us")),
      queue_wait_sketch_(registry_.sketch("serve.queue.wait_us")),
      session_step_sketch_(registry_.sketch("serve.session.step_us")),
      queue_depth_(registry_.gauge("serve.queue.depth")) {
  options_.workers = std::max<size_t>(options_.workers, 1);
  worker_latency_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    worker_latency_.push_back(&registry_.sketch(
        "serve.worker" + std::to_string(i) + ".request_latency_us"));
  }
  for (const std::string& key : options_.base.keys())
    base_pairs_.emplace_back(key, options_.base.get_string(key, ""));
  if (!options_.trace_out.empty()) obs::set_trace_enabled(true);
}

bool Server::stopping() const {
  return stop_.load(std::memory_order_relaxed) ||
         g_signal_stop.load(std::memory_order_relaxed);
}

void Server::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  const int fd = wake_write_fd_;
  if (fd >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

bool Server::try_admit() {
  size_t cur = admitted_.load(std::memory_order_relaxed);
  do {
    if (cur >= options_.queue_depth) return false;
  } while (!admitted_.compare_exchange_weak(cur, cur + 1,
                                            std::memory_order_acq_rel));
  queue_depth_.set(static_cast<double>(cur + 1));
  return true;
}

void Server::release_admission() {
  const size_t now = admitted_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  queue_depth_.set(static_cast<double>(now));
}

std::uint64_t Server::register_inflight(const exec::StopSource& source) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  const std::uint64_t id = next_inflight_id_++;
  inflight_.emplace(id, source);
  // Close the admit/drain race: a request that slipped past the
  // stopping() check while drain() was sweeping in-flight tokens would
  // otherwise run to completion unobserved by the cancel pass.
  if (stopping()) source.request_stop();
  return id;
}

void Server::unregister_inflight(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  inflight_.erase(id);
}

size_t Server::active_requests() const {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  return inflight_.size();
}

std::string Server::error_response(const Json& id, ErrorCode code,
                                   const std::string& message) {
  registry_.counter(std::string("serve.errors.") + to_string(code)).add();
  return build_error_response(id, code, message);
}

std::string Server::oversized_response() {
  return error_response(
      Json(), ErrorCode::kOversizedFrame,
      "frame exceeds " + std::to_string(options_.max_frame_bytes) +
          " bytes");
}

std::string Server::handle_line(const std::string& line, size_t worker) {
  const obs::TraceSpan request_span("serve.request");
  const double t0 = obs::now_us();
  if (worker >= worker_latency_.size()) worker = 0;
  Request req;
  try {
    const obs::TraceSpan parse_span("serve.parse");
    req = parse_request(line);
  } catch (const SimError& e) {
    return error_response(Json(), ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    return error_response(Json(), ErrorCode::kInternal, e.what());
  }

  registry_.counter("serve.requests." + req.method).add();

  try {
    if (req.method == "ping") {
      Json result = Json::object();
      result.set("pong", true);
      return build_ok_response(req.id, false, result.dump(0));
    }
    if (req.method == "metrics") {
      return build_ok_response(
          req.id, false, obs::snapshot_to_json(registry_.snapshot()).dump(0));
    }
    if (req.method == "stats") {
      // Live introspection: exact latency / queue-wait quantiles from
      // the sketches, plus per-name aggregates of the spans still in
      // the flight-recorder rings (empty unless tracing is enabled).
      Json result = Json::object();
      result.set("latency_us", sketch_stats_json(latency_sketch_.snapshot()));
      result.set("queue_wait_us",
                 sketch_stats_json(queue_wait_sketch_.snapshot()));
      result.set("session_step_us",
                 sketch_stats_json(session_step_sketch_.snapshot()));
      result.set("sessions_active", sessions_.active());
      // Per-worker latency sketches folded IN WORKER ORDER — the same
      // deterministic KLL merge the campaign fabric relies on, so the
      // merged quantiles are identical on every stats call over the
      // same traffic regardless of which worker answers it.
      {
        Json workers = Json::object();
        workers.set("count", worker_latency_.size());
        obs::QuantileSketch merged(worker_latency_.front()->k());
        for (const obs::Sketch* ws : worker_latency_)
          merged.merge(ws->collect());
        workers.set("request_latency_us",
                    sketch_stats_json(obs::summarize(merged)));
        result.set("workers", std::move(workers));
      }
      Json spans = Json::object();
      for (const obs::TraceCollector::SpanSummary& s :
           obs::TraceCollector().summaries()) {
        Json sj = Json::object();
        sj.set("count", static_cast<double>(s.count));
        sj.set("total_us", s.total_us);
        sj.set("max_us", s.max_us);
        spans.set(s.name, std::move(sj));
      }
      result.set("spans", std::move(spans));
      return build_ok_response(req.id, false, result.dump(0));
    }
    if (req.method == "methods") {
      Json names = Json::array();
      for (const std::string& name :
           core::MethodologyRegistry::instance().names())
        names.push(name);
      Json result = Json::object();
      result.set("methods", std::move(names));
      return build_ok_response(req.id, false, result.dump(0));
    }
    if (req.method == "run") {
      // Latency is recorded HERE, on every completion path (success,
      // cache hit, refusal, error) — and t0 is taken at frame entry, so
      // it always includes queue wait and parse time.
      const std::string response = handle_run(req);
      const double latency = obs::now_us() - t0;
      latency_us_.record(latency);
      latency_sketch_.record(latency);
      worker_latency_[worker]->record(latency);
      return response;
    }
    if (req.method == "session.open") {
      const std::string response = handle_session_open(req);
      worker_latency_[worker]->record(obs::now_us() - t0);
      return response;
    }
    if (req.method == "session.step") {
      const std::string response = handle_session_step(req);
      const double latency = obs::now_us() - t0;
      session_step_sketch_.record(latency);
      worker_latency_[worker]->record(latency);
      return response;
    }
    if (req.method == "session.close") {
      const std::string response = handle_session_close(req);
      worker_latency_[worker]->record(obs::now_us() - t0);
      return response;
    }
  } catch (const std::exception& e) {
    return error_response(req.id, ErrorCode::kInternal, e.what());
  }
  return error_response(req.id, ErrorCode::kUnknownMethod,
                        "unknown method '" + req.method + "'");
}

std::string Server::handle_run(const Request& req) {
  // A private Config per request: base pairs first, then the request's
  // overrides on top. Never share a Config across sessions — copies
  // share their consumed-key set, which concurrent reads would race on.
  Config merged;
  for (const auto& [key, value] : base_pairs_) merged.set(key, value);
  for (const auto& [key, value] : req.overrides) {
    if (is_output_override(key)) {
      return error_response(req.id, ErrorCode::kBadRequest,
                            "override '" + key +
                                "' is not allowed in serve mode (results "
                                "are returned in the response)");
    }
    merged.set(key, value);
  }

  sim::Scenario scenario;
  try {
    scenario = sim::Scenario::from_config(merged);
  } catch (const SimError& e) {
    return error_response(req.id, ErrorCode::kBadRequest, e.what());
  }
  // Serve-mode scenarios never record or stream server-side: the
  // response carries the report, and cache hits must be side-effect
  // free.
  scenario.record_trace = false;
  scenario.trace_csv.clear();
  scenario.metrics_out.clear();
  scenario.events_jsonl.clear();

  std::string cache_key = canonical_scenario_key(scenario, merged);
  // hex_doubles changes the result BYTES (the report_hex block), so it
  // must partition the cache — a plain request must never replay a hex
  // result or vice versa.
  if (req.hex_doubles) cache_key += "hex_doubles=true\n";

  bool claimed = false;
  if (!req.cache_bypass) {
    if (std::optional<std::string> hit = cache_.lookup_or_begin(cache_key))
      return build_ok_response(req.id, true, *hit);
    claimed = true;
  }

  if (stopping()) {
    if (claimed) cache_.abandon(cache_key);
    return error_response(req.id, ErrorCode::kDraining,
                          "server is draining, not accepting new work");
  }
  if (!try_admit()) {
    if (claimed) cache_.abandon(cache_key);
    return error_response(req.id, ErrorCode::kOverloaded,
                          "admission queue full (queue_depth=" +
                              std::to_string(options_.queue_depth) +
                              "), retry with backoff");
  }

  exec::StopSource source =
      req.deadline_ms > 0.0
          ? exec::StopSource::with_deadline(
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(
                    static_cast<long long>(req.deadline_ms * 1000.0)))
          : exec::StopSource();
  const std::uint64_t inflight_id = register_inflight(source);

  std::string result_json;
  const exec::StopToken token = source.token();
  const obs::TraceSpan dispatch_span("serve.dispatch");
  const double enqueued_us = obs::now_us();
  exec::TaskHandle handle = pool_->submit([&] {
    const double wait_us = obs::now_us() - enqueued_us;
    queue_wait_us_.record(wait_us);
    queue_wait_sketch_.record(wait_us);
    obs::trace_emit("serve.queue_wait", enqueued_us, wait_us);
    const obs::TraceSpan run_span("serve.run");
    const core::SystemSpec spec = core::SystemSpec::from_config(merged);
    // Aggregate this run's sim/solver telemetry into the server
    // registry: the metrics method then reports warm-start hits,
    // ADMM iteration distributions etc. across every served run.
    sim::DiagnosticsSink diagnostics(run_instruments_);
    const sim::ScenarioOutcome outcome =
        sim::run_scenario(scenario, spec, merged, {&diagnostics}, token);
    Json result = Json::object();
    result.set("methodology", scenario.methodology);
    result.set("steps", outcome.power.size());
    result.set("distance_m", outcome.distance_m);
    result.set("report", sim::run_result_to_json(outcome.result));
    if (req.hex_doubles)
      result.set("report_hex", sim::run_result_to_hex_json(outcome.result));
    result_json = result.dump(0);
  });

  std::string response;
  try {
    handle.wait();
    if (claimed) cache_.fill(cache_key, result_json);
    response = build_ok_response(req.id, false, result_json);
  } catch (const SimCancelled& e) {
    if (claimed) cache_.abandon(cache_key);
    response = error_response(req.id,
                              token.deadline_expired()
                                  ? ErrorCode::kDeadlineExceeded
                                  : ErrorCode::kCancelled,
                              e.what());
  } catch (const SimError& e) {
    if (claimed) cache_.abandon(cache_key);
    response = error_response(req.id, ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    if (claimed) cache_.abandon(cache_key);
    response = error_response(req.id, ErrorCode::kInternal, e.what());
  }
  unregister_inflight(inflight_id);
  release_admission();
  return response;
}

namespace {

Json solve_to_json(const core::SolveDiagnostics& s) {
  Json j = Json::object();
  j.set("present", s.present);
  j.set("converged", s.converged);
  j.set("fallback", s.fallback);
  j.set("iterations", s.iterations);
  j.set("sqp_rounds", s.sqp_rounds);
  j.set("qp_iterations", s.qp_iterations);
  j.set("qp_warm_hits", s.qp_warm_hits);
  j.set("kkt_refactorizations", s.kkt_refactorizations);
  j.set("qp_polish_hits", s.qp_polish_hits);
  j.set("solve_time_us", s.solve_time_us);
  return j;
}

}  // namespace

std::string Server::handle_session_open(const Request& req) {
  if (stopping()) {
    return error_response(req.id, ErrorCode::kDraining,
                          "server is draining, not accepting new sessions");
  }
  Config merged;
  for (const auto& [key, value] : base_pairs_) merged.set(key, value);
  for (const auto& [key, value] : req.overrides) {
    if (is_output_override(key)) {
      return error_response(req.id, ErrorCode::kBadRequest,
                            "override '" + key +
                                "' is not allowed in serve mode (results "
                                "are returned in the response)");
    }
    merged.set(key, value);
  }

  sim::Scenario scenario;
  try {
    scenario = sim::Scenario::from_config(merged);
  } catch (const SimError& e) {
    return error_response(req.id, ErrorCode::kBadRequest, e.what());
  }
  scenario.record_trace = false;
  scenario.trace_csv.clear();
  scenario.metrics_out.clear();
  scenario.events_jsonl.clear();

  const std::string sid = sessions_.next_id();
  std::shared_ptr<Session> session;
  try {
    const obs::TraceSpan open_span("serve.session.open");
    session = std::make_shared<Session>(sid, scenario, merged);
  } catch (const SimError& e) {
    return error_response(req.id, ErrorCode::kBadRequest, e.what());
  }
  if (!sessions_.insert(session)) {
    return error_response(req.id, ErrorCode::kSessionLimit,
                          "sessions are disabled (session_limit=0)");
  }

  Json result = Json::object();
  result.set("session", sid);
  result.set("methodology", session->methodology());
  result.set("dt_s", session->dt());
  result.set("route_steps", session->route_steps());
  return build_ok_response(req.id, false, result.dump(0));
}

std::string Server::handle_session_step(const Request& req) {
  if (req.session.empty()) {
    return error_response(req.id, ErrorCode::kBadRequest,
                          "session.step requires 'session'");
  }
  if (stopping()) {
    return error_response(req.id, ErrorCode::kDraining,
                          "server is draining, session is being torn down");
  }
  const std::shared_ptr<Session> session = sessions_.find(req.session);
  if (session == nullptr) {
    return error_response(req.id, ErrorCode::kUnknownSession,
                          "session '" + req.session +
                              "' is not resident (closed or evicted)");
  }
  try {
    const obs::TraceSpan step_span("serve.session.step");
    const Session::StepOutcome out =
        session->step(req.has_p_request, req.p_request_w);
    const core::StepRecord& rec = out.rec;

    Json result = Json::object();
    result.set("session", req.session);
    result.set("k", out.k);
    result.set("p_request_w", out.p_request_w);
    Json decision = Json::object();
    decision.set("p_cooler_w", rec.p_cooler_w);
    decision.set("t_inlet_k", rec.t_inlet_k);
    decision.set("p_cap_w", rec.e_cap_j / session->dt());
    decision.set("i_bat_a", rec.i_bat_a);
    decision.set("i_cap_a", rec.i_cap_a);
    result.set("decision", std::move(decision));
    Json state = Json::object();
    state.set("t_battery_k", rec.state_after.t_battery_k);
    state.set("t_coolant_k", rec.state_after.t_coolant_k);
    state.set("soc_percent", rec.state_after.soc_percent);
    state.set("soe_percent", rec.state_after.soe_percent);
    result.set("state", std::move(state));
    result.set("feasible", rec.feasible);
    result.set("unmet_w", rec.unmet_w);
    result.set("solve", solve_to_json(rec.solve));
    return build_ok_response(req.id, false, result.dump(0));
  } catch (const SimError& e) {
    return error_response(req.id, ErrorCode::kBadRequest, e.what());
  }
}

std::string Server::handle_session_close(const Request& req) {
  if (req.session.empty()) {
    return error_response(req.id, ErrorCode::kBadRequest,
                          "session.close requires 'session'");
  }
  const std::shared_ptr<Session> session = sessions_.remove(req.session);
  if (session == nullptr) {
    return error_response(req.id, ErrorCode::kUnknownSession,
                          "session '" + req.session +
                              "' is not resident (closed or evicted)");
  }
  const sim::RunResult result = session->close();
  Json doc = Json::object();
  doc.set("session", req.session);
  doc.set("steps", session->steps_done());
  doc.set("report", sim::run_result_to_json(result));
  if (req.hex_doubles)
    doc.set("report_hex", sim::run_result_to_hex_json(result));
  return build_ok_response(req.id, false, doc.dump(0));
}

void Server::session_loop(int in_fd, int out_fd, size_t worker) {
  FrameReader reader(in_fd, options_.max_frame_bytes);
  std::string line;
  for (;;) {
    const FrameReader::Status status = reader.next(line, 200);
    if (status == FrameReader::Status::kEof ||
        status == FrameReader::Status::kError)
      return;
    if (status == FrameReader::Status::kNoData) {
      if (stopping()) return;
      continue;
    }
    const std::string response = status == FrameReader::Status::kOversized
                                     ? oversized_response()
                                     : handle_line(line, worker);
    if (!write_frame(out_fd, response)) return;
  }
}

void Server::drain() {
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<double>(
                             options_.drain_timeout_s));
  // Phase 1: give in-flight work the drain window to finish naturally.
  while (active_requests() > 0 && clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

  // Phase 2: cancel the stragglers through their stop tokens; the
  // per-step check in the simulator unwinds them within one step.
  size_t cancelled = 0;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    for (auto& [id, source] : inflight_) {
      source.request_stop();
      ++cancelled;
    }
  }
  if (cancelled > 0)
    log::info("serve: drain timeout, cancelled ", cancelled,
              " in-flight request(s)");
  while (active_requests() > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // Tear down resident sessions: stopping() already refuses new steps,
  // a step in flight finishes safely on its shared_ptr, and everything
  // after this answers kUnknownSession.
  const size_t resident = sessions_.active();
  if (resident > 0)
    log::info("serve: drain dropped ", resident, " resident session(s)");
  sessions_.clear();
}

void Server::shutdown_flush() {
  const obs::MetricsSnapshot snap = registry_.snapshot();
  const auto count = [&](const char* name) {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? std::uint64_t{0} : it->second;
  };
  log::info("serve: shutting down — requests=",
            count("serve.requests.run"), " cache_hits=",
            count("serve.cache.hits"), " cache_misses=",
            count("serve.cache.misses"));
  if (!options_.metrics_out.empty()) {
    try {
      obs::write_metrics_json(options_.metrics_out, registry_);
      log::info("serve: final metrics snapshot written to ",
                options_.metrics_out);
    } catch (const std::exception& e) {
      log::error("serve: failed to flush metrics snapshot: ", e.what());
    }
  }
  if (!options_.trace_out.empty()) {
    try {
      obs::TraceCollector().write_chrome_trace(options_.trace_out);
      log::info("serve: trace written to ", options_.trace_out);
    } catch (const std::exception& e) {
      log::error("serve: failed to write trace: ", e.what());
    }
  }
}

int Server::serve_stdio(int in_fd, int out_fd) {
  SignalGuard signals;
  session_loop(in_fd, out_fd, 0);
  request_stop();
  drain();
  shutdown_flush();
  return 0;
}

void Server::accept_loop(int listen_fd, bool tcp, size_t worker) {
  obs::Counter& connections = registry_.counter("serve.connections");
  while (!stopping()) {
    struct pollfd pfds[2];
    pfds[0] = {listen_fd, POLLIN, 0};
    pfds[1] = {wake_read_fd_, POLLIN, 0};
    const int pr = ::poll(pfds, 2, 500);
    if (pr <= 0) continue;  // timeout or EINTR: re-check stopping()
    if (pfds[1].revents != 0) continue;  // woken for shutdown
    if ((pfds[0].revents & POLLIN) == 0) continue;
    // The listening socket is non-blocking: every worker polls it, so a
    // wakeup may find another acceptor already took the connection
    // (EAGAIN) — just go around.
    const int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) continue;
    if (tcp) {
      // One-line control frames must never sit in Nagle's buffer — a
      // session.step round trip IS the latency budget.
      const int one = 1;
      ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    connections.add();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      ++open_connections_;
    }
    std::thread([this, client_fd, worker] {
      session_loop(client_fd, client_fd, worker);
      ::close(client_fd);
      {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        --open_connections_;
      }
      connections_done_.notify_all();
    }).detach();
  }
}

int Server::serve_listener(int listen_fd, bool tcp) {
  SignalGuard signals;

  int wake[2] = {-1, -1};
  OTEM_REQUIRE(::pipe(wake) == 0, "serve: cannot create wake pipe");
  ::fcntl(wake[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake[1], F_SETFL, O_NONBLOCK);
  wake_read_fd_ = wake[0];
  wake_write_fd_ = wake[1];
  g_wake_fd.store(wake[1], std::memory_order_relaxed);
  // Non-blocking accept: all workers poll the same listening socket and
  // the kernel wakes whoever it pleases; losers of the accept race must
  // not block.
  ::fcntl(listen_fd, F_SETFL, O_NONBLOCK);

  // Workers 1..N-1 on their own threads, worker 0 on this one. The
  // wake byte is deliberately never read: once written, every poller
  // sees POLLIN forever, so ALL workers wake and observe stopping().
  std::vector<std::thread> acceptors;
  for (size_t w = 1; w < options_.workers; ++w)
    acceptors.emplace_back([this, listen_fd, tcp, w] {
      accept_loop(listen_fd, tcp, w);
    });
  accept_loop(listen_fd, tcp, 0);
  for (std::thread& t : acceptors) t.join();

  ::close(listen_fd);
  request_stop();  // make stopping() true for sessions even on signal path
  drain();
  {
    // Connection threads exit within one poll interval of stopping();
    // in-flight work was finished or cancelled by drain() above.
    std::unique_lock<std::mutex> lock(connections_mutex_);
    connections_done_.wait(lock, [&] { return open_connections_ == 0; });
  }
  wake_write_fd_ = -1;
  wake_read_fd_ = -1;
  ::close(wake[0]);
  ::close(wake[1]);
  shutdown_flush();
  return 0;
}

int Server::serve_unix(const std::string& socket_path) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  OTEM_REQUIRE(listen_fd >= 0, "serve: cannot create socket");

  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  OTEM_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
               "serve: socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  // A stale socket file from a crashed daemon would block the bind;
  // remove it. A LIVE daemon on the path loses its socket too — the
  // deployment owns the path, as with any pid/socket file.
  ::unlink(socket_path.c_str());
  OTEM_REQUIRE(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "serve: cannot bind " + socket_path + ": " +
                   std::strerror(errno));
  OTEM_REQUIRE(::listen(listen_fd, 64) == 0,
               "serve: cannot listen on " + socket_path);

  log::info("serve: listening on ", socket_path, " (workers=",
            options_.workers, " threads=", pool_->thread_count(),
            " queue_depth=", options_.queue_depth,
            " cache_bytes=", options_.cache_bytes, ")");

  const int rc = serve_listener(listen_fd, /*tcp=*/false);
  ::unlink(socket_path.c_str());
  return rc;
}

int Server::serve_tcp(const std::string& host_port) {
  const size_t colon = host_port.rfind(':');
  OTEM_REQUIRE(colon != std::string::npos,
               "serve: tcp endpoint must be host:port, got '" + host_port +
                   "'");
  std::string host = host_port.substr(0, colon);
  const std::string port_str = host_port.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  OTEM_REQUIRE(end != nullptr && *end == '\0' && port >= 0 && port <= 65535,
               "serve: invalid tcp port '" + port_str + "'");
  if (host.empty() || host == "localhost") host = "127.0.0.1";
  if (host == "*") host = "0.0.0.0";

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  OTEM_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
               "serve: invalid tcp host '" + host +
                   "' (IPv4 literal or 'localhost')");

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  OTEM_REQUIRE(listen_fd >= 0, "serve: cannot create tcp socket");
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  OTEM_REQUIRE(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "serve: cannot bind " + host_port + ": " +
                   std::strerror(errno));
  OTEM_REQUIRE(::listen(listen_fd, 128) == 0,
               "serve: cannot listen on " + host_port);

  // Report the kernel-assigned port for port-0 binds (tests, loadtest).
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0)
    bound_port_.store(ntohs(bound.sin_port), std::memory_order_release);

  log::info("serve: listening on ", host, ":", bound_port(), " (workers=",
            options_.workers, " threads=", pool_->thread_count(),
            " queue_depth=", options_.queue_depth,
            " cache_bytes=", options_.cache_bytes, ")");

  return serve_listener(listen_fd, /*tcp=*/true);
}

}  // namespace otem::serve
