#include "serve/session.h"

#include "common/error.h"
#include "core/methodology_registry.h"

namespace otem::serve {

Session::Session(std::string id, const sim::Scenario& scenario,
                 const Config& cfg)
    : id_(std::move(id)), methodology_name_(scenario.methodology) {
  spec_ = core::SystemSpec::from_config(cfg);
  if (scenario.ambient_k > 0.0) spec_.ambient_k = scenario.ambient_k;

  power_ = sim::scenario_power_trace(scenario, spec_);
  OTEM_REQUIRE(!power_.empty(), "session route resolved to zero steps");
  // The same step period the batch runner would use: the route's.
  dt_ = power_.dt();

  state_ = scenario.initial;
  if (scenario.soak) {
    state_.t_battery_k = spec_.ambient_k;
    state_.t_coolant_k = spec_.ambient_k;
  }

  methodology_ = core::make_methodology(scenario.methodology, spec_, cfg);
  // The full route is the forecast P_hat_e (Algorithm 1 input); the
  // session then steps through it — or past it, with explicit requests.
  methodology_->reset(state_, power_);

  metrics_.begin(sim::RunContext{spec_, dt_, /*steps=*/0, state_});
}

Session::StepOutcome Session::step(bool has_p, double p_request_w) {
  std::lock_guard<std::mutex> lock(mutex_);
  double p_e = p_request_w;
  if (!has_p) {
    OTEM_REQUIRE(k_ < power_.size(),
                 "session '" + id_ + "' route exhausted after " +
                     std::to_string(power_.size()) +
                     " steps; supply p_request_w to keep streaming");
    p_e = power_[k_];
  }

  StepOutcome out;
  out.k = k_;
  out.p_request_w = p_e;
  out.rec = methodology_->step(state_, p_e, k_, dt_);
  metrics_.record(sim::StepSample{k_, out.rec, state_, 0.0, 0.0, 0.0});
  ++k_;
  return out;
}

sim::RunResult Session::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.end(state_);
  sim::RunResult result = metrics_.take();
  // begin() could not know the mission length (the client decides when
  // to hang up), so duration-derived fields are closed here.
  result.duration_s = static_cast<double>(k_) * dt_;
  result.average_power_w =
      result.duration_s > 0.0 ? result.energy_hees_j / result.duration_s
                              : 0.0;
  return result;
}

size_t Session::steps_done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return k_;
}

SessionManager::SessionManager(const SessionLimits& limits,
                               obs::MetricsRegistry& registry)
    : limits_(limits),
      active_gauge_(registry.gauge("serve.sessions_active")),
      opened_(registry.counter("serve.sessions_opened")),
      closed_(registry.counter("serve.sessions_closed")),
      evicted_(registry.counter("serve.sessions_evicted")) {}

std::string SessionManager::next_id() {
  return "s" + std::to_string(
                   next_id_.fetch_add(1, std::memory_order_relaxed));
}

void SessionManager::erase_locked(const std::string& id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void SessionManager::evict_locked(size_t headroom) {
  const Clock::time_point now = Clock::now();
  // TTL sweep: retire anything idle past the deadline, coldest first.
  if (limits_.ttl_s > 0.0) {
    const auto ttl = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(limits_.ttl_s));
    while (!lru_.empty()) {
      const auto it = entries_.find(lru_.back());
      if (now - it->second.last_used < ttl) break;
      entries_.erase(it);
      lru_.pop_back();
      evicted_.add();
    }
  }
  // Capacity: evict from the cold end until `headroom` slots are free.
  while (!lru_.empty() &&
         entries_.size() + headroom > limits_.max_sessions) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evicted_.add();
  }
  active_gauge_.set(static_cast<double>(entries_.size()));
}

bool SessionManager::insert(std::shared_ptr<Session> session) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (limits_.max_sessions == 0) return false;
  evict_locked(1);
  const std::string id = session->id();
  lru_.push_front(id);
  entries_[id] = Entry{std::move(session), Clock::now(), lru_.begin()};
  active_gauge_.set(static_cast<double>(entries_.size()));
  opened_.add();
  return true;
}

std::shared_ptr<Session> SessionManager::find(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  evict_locked(0);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return nullptr;
  it->second.last_used = Clock::now();
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  it->second.lru_pos = lru_.begin();
  return it->second.session;
}

std::shared_ptr<Session> SessionManager::remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return nullptr;
  std::shared_ptr<Session> session = std::move(it->second.session);
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  active_gauge_.set(static_cast<double>(entries_.size()));
  closed_.add();
  return session;
}

void SessionManager::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  active_gauge_.set(0.0);
}

size_t SessionManager::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace otem::serve
