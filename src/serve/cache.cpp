#include "serve/cache.h"

#include <algorithm>
#include <cstdint>

#include "common/config.h"
#include "common/json.h"
#include "common/strings.h"
#include "serve/protocol.h"
#include "sim/scenario.h"

namespace otem::serve {

namespace {

/// Scenario-owned config keys (the vocabulary Scenario::from_config
/// consumes — see sim/scenario.h's header comment). These are excluded
/// from the sorted override tail of the cache key because the resolved
/// scenario block already encodes them canonically; listing "cycle=UDDS"
/// explicitly must hash identically to relying on the default.
bool is_scenario_key(const std::string& key) {
  static const char* kKeys[] = {
      "method",        "cycle",
      "cycle_csv",     "time_column",
      "speed_column",  "synthetic",
      "synthetic_seed", "synthetic_duration_s",
      "synthetic_max_speed_mps", "repeats",
      "soak",          "t_battery0_k",
      "t_coolant0_k",  "soe0",
      "soc0",          "record_trace",
      "trace_csv",     "metrics_out",
      "events_jsonl",  "events_every",
  };
  return std::any_of(std::begin(kKeys), std::end(kKeys),
                     [&](const char* k) { return key == k; });
}

/// Per-entry bookkeeping overhead charged against the byte budget.
constexpr size_t kEntryOverhead = 64;

}  // namespace

std::string canonical_scenario_key(const sim::Scenario& scenario,
                                   const Config& cfg) {
  // The scenario block: every field that picks the work, in a fixed
  // order, serialized with the Json dumper (%.12g — missions differing
  // only beyond 12 significant digits alias, which is fine for a
  // cache: an alias returns a result for parameters indistinguishable
  // from the request's).
  Json sc = Json::object();
  sc.set("schema", kSchema);
  sc.set("methodology", scenario.methodology);
  sc.set("cycle", scenario.cycle);
  sc.set("cycle_csv", scenario.cycle_csv);
  sc.set("time_column", scenario.time_column);
  sc.set("speed_column", scenario.speed_column);
  sc.set("synthetic", scenario.synthetic);
  sc.set("synthetic_seed",
         strings::format_double(static_cast<double>(scenario.synthetic_seed),
                                0));
  sc.set("synthetic_duration_s", scenario.synthetic_duration_s);
  sc.set("synthetic_max_speed_mps", scenario.synthetic_max_speed_mps);
  sc.set("repeats", scenario.repeats);
  sc.set("ambient_k", scenario.ambient_k);
  sc.set("soak", scenario.soak);
  sc.set("t_battery0_k", scenario.initial.t_battery_k);
  sc.set("t_coolant0_k", scenario.initial.t_coolant_k);
  sc.set("soc0", scenario.initial.soc_percent);
  sc.set("soe0", scenario.initial.soe_percent);

  std::string key = sc.dump(0);
  key += '\n';

  // The spec tail: every remaining override, sorted, so battery./
  // thermal./otem.* parameters distinguish entries. keys() is already
  // sorted.
  for (const std::string& k : cfg.keys()) {
    if (is_scenario_key(k)) continue;
    key += k;
    key += '=';
    key += cfg.get_string(k, "");
    key += '\n';
  }
  return key;
}

ResultCache::ResultCache(size_t max_bytes, obs::MetricsRegistry& registry,
                         const std::string& gauge_suffix)
    : max_bytes_(max_bytes),
      hits_(registry.counter("serve.cache.hits")),
      misses_(registry.counter("serve.cache.misses")),
      coalesced_(registry.counter("serve.cache.coalesced")),
      evictions_(registry.counter("serve.cache.evictions")),
      bytes_gauge_(registry.gauge("serve.cache.bytes" + gauge_suffix)),
      entries_gauge_(registry.gauge("serve.cache.entries" + gauge_suffix)) {}

std::optional<std::string> ResultCache::lookup_or_begin(
    const std::string& key) {
  if (max_bytes_ == 0) {
    misses_.add();
    return std::nullopt;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      // First asker: claim the key; pending entries carry no bytes and
      // sit outside the LRU list.
      entries_.emplace(key, Entry{});
      misses_.add();
      return std::nullopt;
    }
    if (!it->second.pending) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      hits_.add();
      return it->second.value;
    }
    // Someone is computing this key right now: wait for fill() or
    // abandon(), then re-examine.
    coalesced_.add();
    filled_.wait(lock);
  }
}

void ResultCache::fill(const std::string& key, std::string value) {
  if (max_bytes_ == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end() || !it->second.pending) return;
    it->second.value = std::move(value);
    it->second.pending = false;
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    bytes_ += key.size() + it->second.value.size() + kEntryOverhead;
    evict_over_budget_locked();
    bytes_gauge_.set(static_cast<double>(bytes_));
    entries_gauge_.set(static_cast<double>(entries_.size()));
  }
  filled_.notify_all();
}

void ResultCache::abandon(const std::string& key) {
  if (max_bytes_ == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.pending) entries_.erase(it);
  }
  filled_.notify_all();
}

void ResultCache::evict_over_budget_locked() {
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (it != entries_.end()) {
      bytes_ -= std::min(
          bytes_, victim.size() + it->second.value.size() + kEntryOverhead);
      entries_.erase(it);
    }
    evictions_.add();
  }
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

ShardedResultCache::ShardedResultCache(size_t max_bytes, size_t shards,
                                       obs::MetricsRegistry& registry) {
  const size_t n = shards > 0 ? shards : 1;
  const size_t per_shard = max_bytes / n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<ResultCache>(
        per_shard, registry,
        n == 1 ? std::string() : ".shard" + std::to_string(i)));
  }
  if (n > 1) {
    bytes_gauge_ = &registry.gauge("serve.cache.bytes");
    entries_gauge_ = &registry.gauge("serve.cache.entries");
  }
}

size_t ShardedResultCache::shard_of(const std::string& key) const {
  // FNV-1a 64: stable across platforms and processes, so every worker
  // (and a future multi-machine fabric) routes a key identically.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % shards_.size());
}

std::optional<std::string> ShardedResultCache::lookup_or_begin(
    const std::string& key) {
  return shards_[shard_of(key)]->lookup_or_begin(key);
}

void ShardedResultCache::fill(const std::string& key, std::string value) {
  shards_[shard_of(key)]->fill(key, std::move(value));
  refresh_gauges();
}

void ShardedResultCache::abandon(const std::string& key) {
  shards_[shard_of(key)]->abandon(key);
  refresh_gauges();
}

size_t ShardedResultCache::bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->bytes();
  return total;
}

size_t ShardedResultCache::entries() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->entries();
  return total;
}

void ShardedResultCache::refresh_gauges() {
  if (bytes_gauge_ == nullptr) return;
  bytes_gauge_->set(static_cast<double>(bytes()));
  entries_gauge_->set(static_cast<double>(entries()));
}

}  // namespace otem::serve

