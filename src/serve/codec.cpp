#include "serve/codec.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <poll.h>
#include <unistd.h>

namespace otem::serve {

namespace {
constexpr size_t kReadChunk = 64 * 1024;
}

FrameReader::Status FrameReader::next(std::string& line, int timeout_ms) {
  for (;;) {
    // Serve from the buffer first: a pipelined client may have several
    // frames in flight, and EOF must still drain buffered frames.
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      if (skipping_) {
        // Tail of the oversized frame: drop through the newline and
        // resume normal framing with whatever follows.
        buffer_.erase(0, nl + 1);
        skipping_ = false;
        continue;
      }
      if (nl > max_frame_bytes_) {
        // The whole oversized frame arrived in one gulp: consume it
        // through its newline — no skip state needed.
        buffer_.erase(0, nl + 1);
        return Status::kOversized;
      }
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return Status::kFrame;
    }
    if (!skipping_ && buffer_.size() > max_frame_bytes_) {
      buffer_.clear();
      skipping_ = true;
      return Status::kOversized;
    }
    if (skipping_) buffer_.clear();  // keep discarding, bound memory
    if (eof_) {
      // A final unterminated fragment is not a frame; drop it.
      buffer_.clear();
      return Status::kEof;
    }

    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr == 0) return Status::kNoData;
    if (pr < 0) {
      if (errno == EINTR) return Status::kNoData;
      return Status::kError;
    }

    char chunk[kReadChunk];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n == 0) {
      eof_ = true;
      continue;  // loop once more to flush/clear the buffer
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) return Status::kNoData;
      return Status::kError;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

bool write_frame(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace otem::serve
