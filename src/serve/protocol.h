// protocol.h — the otem.serve.v1 request/response schema.
//
// One JSON object per line, both directions. Requests:
//
//   {"schema": "otem.serve.v1",
//    "method": "run" | "ping" | "metrics" | "stats" | "methods"
//            | "session.open" | "session.step" | "session.close",
//    "id": <any JSON value, echoed back verbatim>,        (optional)
//    "deadline_ms": <number>,                             (optional)
//    "cache": "use" | "bypass",                           (optional)
//    "hex_doubles": bool,                                 (optional)
//    "session": "<session id>",        (session.step / session.close)
//    "p_request_w": <number>,          (session.step, optional)
//    "overrides": {"key": "value" | number | bool, ...}}  (optional)
//
// `overrides` carries the same key=value vocabulary as the otem_cli
// command line (scenario keys from sim/scenario.h plus any spec
// parameter); numbers and booleans are coerced to their config string
// forms. `hex_doubles` asks run/session.close replies to carry a
// "report_hex" twin of the report whose doubles are IEEE-754 bit
// patterns (strings::hex_double) — the opt-in that makes remote
// summaries bit-exact. The session.* methods drive a resident
// controller one protocol step at a time (serve/session.h). Responses:
//
//   {"schema": "otem.serve.v1", "id": ..., "ok": true,
//    "cached": bool, "result": {...}}                       (success)
//   {"schema": "otem.serve.v1", "id": ..., "ok": false,
//    "error": "<code>", "message": "..."}                   (failure)
//
// Success envelopes are assembled by splicing the PRE-SERIALIZED
// result document into the line, so a cached result is byte-identical
// to the original computation — the property the CI smoke test pins.
//
// Error codes are a closed set (to_string below); unknown methods and
// malformed frames are answered in-protocol and never kill the
// connection.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

namespace otem::serve {

inline constexpr const char* kSchema = "otem.serve.v1";

enum class ErrorCode {
  kBadRequest,        ///< malformed JSON, schema/type errors, bad overrides
  kUnknownMethod,     ///< well-formed frame, method not in the vocabulary
  kOversizedFrame,    ///< frame exceeded the size ceiling (codec-level)
  kOverloaded,        ///< admission queue full — retry with backoff
  kDraining,          ///< server is shutting down, not accepting work
  kDeadlineExceeded,  ///< request deadline expired before completion
  kCancelled,         ///< work abandoned (drain cancelled in-flight run)
  kUnknownSession,    ///< session id not resident (never opened, closed,
                      ///< or evicted by the LRU/TTL policy)
  kSessionLimit,      ///< session table full and nothing evictable
  kInternal,          ///< unexpected server-side failure
};

const char* to_string(ErrorCode code);

/// A parsed, validated request frame.
struct Request {
  std::string method;
  Json id;  ///< echoed verbatim in the response; kNull when absent
  double deadline_ms = 0.0;  ///< 0 = no deadline
  bool cache_bypass = false;
  /// Opt-in bit-exact reports: run / session.close results gain a
  /// "report_hex" twin with hex-encoded doubles.
  bool hex_doubles = false;
  /// Target session id (session.step / session.close).
  std::string session;
  /// session.step: the power request for this step [W]. When absent the
  /// session serves the next value of its own route trace.
  double p_request_w = 0.0;
  bool has_p_request = false;
  /// Scenario/spec overrides in document order, values already coerced
  /// to config string form.
  std::vector<std::pair<std::string, std::string>> overrides;
};

/// Parse and validate one request line. Throws otem::SimError with a
/// client-presentable message on any malformed input (the server maps
/// that to a kBadRequest response).
Request parse_request(const std::string& line);

/// Serialize a request (the client side of the protocol).
std::string build_request(const Request& request);

/// Success envelope with `result_json` (a pre-serialized compact JSON
/// document) spliced in verbatim.
std::string build_ok_response(const Json& id, bool cached,
                              const std::string& result_json);

/// Error envelope.
std::string build_error_response(const Json& id, ErrorCode code,
                                 const std::string& message);

}  // namespace otem::serve
