// codec.h — line framing for the serve protocol.
//
// otem.serve.v1 frames are newline-delimited JSON documents: one
// request or response per '\n'-terminated line, no length prefix, no
// binary. A FrameReader buffers a file descriptor (socket or pipe),
// yields complete lines, and enforces the frame-size ceiling — an
// over-long line is reported ONCE as kOversized and then skipped to the
// next newline, so a client that sent one huge frame gets a structured
// error and keeps its connection. write_frame is the single-syscall-
// friendly mirror (loops on partial writes and EINTR).
#pragma once

#include <cstddef>
#include <string>

namespace otem::serve {

class FrameReader {
 public:
  enum class Status {
    kFrame,      ///< `line` holds one complete frame (newline stripped)
    kNoData,     ///< poll timeout elapsed with no complete frame
    kEof,        ///< orderly end of stream
    kOversized,  ///< frame exceeded max_frame_bytes; now skipping to '\n'
    kError,      ///< read failed (errno-level); treat like EOF
  };

  FrameReader(int fd, size_t max_frame_bytes)
      : fd_(fd), max_frame_bytes_(max_frame_bytes) {}

  /// Produce the next frame, waiting up to `timeout_ms` for bytes to
  /// arrive (so a serving loop can interleave stop-flag checks).
  /// Already-buffered complete frames return immediately without
  /// touching the descriptor — pipelined clients are served back to
  /// back.
  Status next(std::string& line, int timeout_ms);

 private:
  int fd_;
  size_t max_frame_bytes_;
  std::string buffer_;
  bool skipping_ = false;  ///< discarding the rest of an oversized frame
  bool eof_ = false;
};

/// Write `line` plus the terminating '\n' to `fd`, looping on partial
/// writes and EINTR. False when the peer is gone (EPIPE & friends).
bool write_frame(int fd, const std::string& line);

}  // namespace otem::serve
