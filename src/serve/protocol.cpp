#include "serve/protocol.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace otem::serve {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownMethod: return "unknown_method";
    case ErrorCode::kOversizedFrame: return "oversized_frame";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDraining: return "draining";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kUnknownSession: return "unknown_session";
    case ErrorCode::kSessionLimit: return "session_limit";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

namespace {

/// Override values arrive as JSON strings, numbers or booleans and all
/// become config strings — the same text a command-line key=value pair
/// would have carried.
std::string coerce_override(const std::string& key, const Json& value) {
  switch (value.type()) {
    case Json::Type::kString:
      return value.as_string();
    case Json::Type::kNumber: {
      // Integral values print as integers so keys parsed with
      // get_long ("repeats", "otem.horizon", seeds) stay parseable;
      // %.17g keeps full double fidelity for everything else.
      const double v = value.as_number();
      char buf[40];
      if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
      }
      return buf;
    }
    case Json::Type::kBool:
      return value.as_bool() ? "true" : "false";
    default:
      throw SimError("override '" + key +
                     "' must be a string, number or boolean");
  }
}

}  // namespace

Request parse_request(const std::string& line) {
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const SimError& e) {
    throw SimError(std::string("invalid JSON frame: ") + e.what());
  }
  if (!doc.is_object()) throw SimError("request frame must be a JSON object");

  Request req;
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kSchema) {
    throw SimError(std::string("request schema must be \"") + kSchema + "\"");
  }
  const Json* method = doc.find("method");
  if (method == nullptr || !method->is_string() ||
      method->as_string().empty()) {
    throw SimError("request 'method' must be a non-empty string");
  }
  req.method = method->as_string();

  if (const Json* id = doc.find("id")) req.id = *id;

  if (const Json* deadline = doc.find("deadline_ms")) {
    if (!deadline->is_number() || deadline->as_number() < 0.0)
      throw SimError("'deadline_ms' must be a non-negative number");
    req.deadline_ms = deadline->as_number();
  }

  if (const Json* cache = doc.find("cache")) {
    if (!cache->is_string() ||
        (cache->as_string() != "use" && cache->as_string() != "bypass"))
      throw SimError("'cache' must be \"use\" or \"bypass\"");
    req.cache_bypass = cache->as_string() == "bypass";
  }

  if (const Json* hex = doc.find("hex_doubles")) {
    if (!hex->is_bool()) throw SimError("'hex_doubles' must be a boolean");
    req.hex_doubles = hex->as_bool();
  }

  if (const Json* session = doc.find("session")) {
    if (!session->is_string() || session->as_string().empty())
      throw SimError("'session' must be a non-empty string");
    req.session = session->as_string();
  }

  if (const Json* p = doc.find("p_request_w")) {
    if (!p->is_number()) throw SimError("'p_request_w' must be a number");
    req.p_request_w = p->as_number();
    req.has_p_request = true;
  }

  if (const Json* overrides = doc.find("overrides")) {
    if (!overrides->is_object())
      throw SimError("'overrides' must be a JSON object");
    for (const auto& [key, value] : overrides->members()) {
      if (key.empty()) throw SimError("override keys must be non-empty");
      req.overrides.emplace_back(key, coerce_override(key, value));
    }
  }
  return req;
}

std::string build_request(const Request& request) {
  Json doc = Json::object();
  doc.set("schema", kSchema);
  doc.set("method", request.method);
  if (!request.id.is_null()) doc.set("id", request.id);
  if (request.deadline_ms > 0.0) doc.set("deadline_ms", request.deadline_ms);
  if (request.cache_bypass) doc.set("cache", "bypass");
  if (request.hex_doubles) doc.set("hex_doubles", true);
  if (!request.session.empty()) doc.set("session", request.session);
  if (request.has_p_request) doc.set("p_request_w", request.p_request_w);
  if (!request.overrides.empty()) {
    Json overrides = Json::object();
    for (const auto& [key, value] : request.overrides)
      overrides.set(key, value);
    doc.set("overrides", std::move(overrides));
  }
  return doc.dump(0);
}

std::string build_ok_response(const Json& id, bool cached,
                              const std::string& result_json) {
  // Hand-assembled so `result_json` lands in the envelope byte for
  // byte; a Json round-trip could legally re-format numbers, and the
  // cached-result identity guarantee forbids that.
  std::string out = "{\"schema\":\"";
  out += kSchema;
  out += "\",\"id\":";
  out += id.dump(0);
  out += ",\"ok\":true,\"cached\":";
  out += cached ? "true" : "false";
  out += ",\"result\":";
  out += result_json;
  out += '}';
  return out;
}

std::string build_error_response(const Json& id, ErrorCode code,
                                 const std::string& message) {
  Json doc = Json::object();
  doc.set("schema", kSchema);
  doc.set("id", id);
  doc.set("ok", false);
  doc.set("error", to_string(code));
  doc.set("message", message);
  return doc.dump(0);
}

}  // namespace otem::serve
