// cache.h — content-addressed result cache with LRU eviction.
//
// The daemon's repeated-query fast path: run results are keyed by a
// CANONICAL description of the resolved work — the fully-resolved
// sim::Scenario (seeded routes, repeats, initial state and all) plus
// every remaining spec override, sorted — so two requests that mean the
// same mission hit the same entry even when they spell it differently
// (e.g. one writes "cycle=UDDS" and the other relies on the default).
// Values are the pre-serialized compact result documents, which is what
// makes cached responses byte-identical to the original computation.
//
// Lookups are SINGLE-FLIGHT: the first miss for a key claims it and
// computes; concurrent requests for the same key block until the value
// lands instead of duplicating a multi-second simulation (they count as
// coalesced hits). If the computation fails, waiters are released to
// fend for themselves. Eviction is strict LRU by byte budget; entries
// being computed are not evictable.
//
// Thread-safe throughout; instruments (hits/misses/coalesced/evictions
// counters, bytes/entries gauges) land in the registry handed to the
// constructor under `serve.cache.`.
#pragma once

#include <cstddef>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace otem {
class Config;
}

namespace otem::sim {
struct Scenario;
}

namespace otem::serve {

/// The canonical cache key for a run request: a stable, human-readable
/// serialization of the resolved scenario plus all non-scenario
/// overrides (sorted key=value lines). Exposed for tests and for the
/// docs' worked example.
std::string canonical_scenario_key(const sim::Scenario& scenario,
                                   const Config& cfg);

class ResultCache {
 public:
  /// `max_bytes` bounds the sum of key+value byte sizes (plus a small
  /// per-entry overhead); 0 disables caching entirely (every lookup
  /// misses, fills are dropped). `gauge_suffix` distinguishes the
  /// bytes/entries gauges when several caches share a registry (the
  /// sharded wrapper below passes ".shard<i>"); counters are shared by
  /// name regardless — they are additive across shards.
  ResultCache(size_t max_bytes, obs::MetricsRegistry& registry,
              const std::string& gauge_suffix = "");

  /// Single-flight lookup. Returns the cached value on a hit (possibly
  /// after blocking on another thread's in-progress computation).
  /// Returns nullopt when THIS caller claimed the key: it must follow
  /// up with fill() on success or abandon() on failure, or waiters
  /// block until the server drains.
  std::optional<std::string> lookup_or_begin(const std::string& key);

  /// Publish the computed value for a key claimed via lookup_or_begin
  /// and wake coalesced waiters. Evicts LRU entries over budget.
  void fill(const std::string& key, std::string value);

  /// Release a claimed key without a value (computation failed); one
  /// waiter inherits the claim, the rest re-queue behind it.
  void abandon(const std::string& key);

  size_t bytes() const;
  size_t entries() const;

 private:
  struct Entry {
    std::string value;
    bool pending = true;
    /// Position in lru_ (valid only when !pending).
    std::list<std::string>::iterator lru_pos;
  };

  void evict_over_budget_locked();

  const size_t max_bytes_;
  mutable std::mutex mutex_;
  std::condition_variable filled_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< most-recently-used at front
  size_t bytes_ = 0;

  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& coalesced_;
  obs::Counter& evictions_;
  obs::Gauge& bytes_gauge_;
  obs::Gauge& entries_gauge_;
};

/// Consistently-sharded wrapper for the multi-worker daemon: keys land
/// on shard FNV1a64(key) % shards, so every worker resolves the same
/// key to the same ResultCache and the single-flight guarantee holds
/// per shard — concurrent byte-identical requests still coalesce onto
/// one computation no matter which acceptor admitted them, while
/// requests for different missions stop contending on one mutex. The
/// byte budget is split evenly across shards (strict LRU within each);
/// hit/miss/coalesced/eviction counters aggregate into the same
/// serve.cache.* names, per-shard bytes/entries gauges carry a
/// ".shard<i>" suffix, and the wrapper maintains the aggregate
/// serve.cache.bytes / serve.cache.entries gauges. One shard behaves
/// exactly like a bare ResultCache.
class ShardedResultCache {
 public:
  ShardedResultCache(size_t max_bytes, size_t shards,
                     obs::MetricsRegistry& registry);

  /// The shard `key` consistently hashes to (exposed for tests).
  size_t shard_of(const std::string& key) const;

  std::optional<std::string> lookup_or_begin(const std::string& key);
  void fill(const std::string& key, std::string value);
  void abandon(const std::string& key);

  size_t shards() const { return shards_.size(); }
  size_t bytes() const;
  size_t entries() const;

 private:
  void refresh_gauges();

  std::vector<std::unique_ptr<ResultCache>> shards_;
  obs::Gauge* bytes_gauge_ = nullptr;    ///< aggregate (multi-shard only)
  obs::Gauge* entries_gauge_ = nullptr;
};

}  // namespace otem::serve
