// server.h — the OTEM evaluation daemon.
//
// A resident Server answers otem.serve.v1 frames (serve/protocol.h)
// so fleets of evaluation queries stop paying process launch, scenario
// parsing and cold caches per run. The pieces:
//
//   admission queue — at most queue_depth run requests may be queued or
//       executing at once; the rest are refused IMMEDIATELY with
//       {"error":"overloaded"} rather than buffered into unbounded
//       latency (clients retry with backoff). ping/metrics/stats/
//       methods are control-plane and never queue.
//   dispatch       — admitted runs execute on an exec::ThreadPool via
//       submit(); the session thread joins the handle, so slow clients
//       only ever block themselves.
//   result cache   — serve/cache.h keyed by the canonical resolved
//       scenario; repeat queries are O(1) and byte-identical.
//   deadlines      — a per-request exec::StopSource with the client's
//       deadline_ms; the simulator's per-step stop check turns an
//       expired deadline into {"error":"deadline_exceeded"} instead of
//       a stuck worker.
//   graceful drain — SIGINT/SIGTERM (or request_stop()) stops
//       accepting, answers queued frames with {"error":"draining"},
//       gives in-flight work drain_timeout_s to finish, cancels
//       stragglers through their stop tokens, flushes a final metrics
//       snapshot and returns 0.
//
// Transports: a Unix-domain socket (serve_unix), a TCP listener
// (serve_tcp, TCP_NODELAY on every accepted connection so one-line
// control frames are never Nagle-delayed) — both with one detached
// connection thread per client and per-connection read buffers reused
// across frames — and a stdio mode (serve_stdio) for tests and
// pipelines. handle_line() is the transport-free core — one request
// line in, one response line out — which is what the protocol tests
// drive directly.
//
// Multi-worker mode (workers=N) runs N acceptor loops over the shared
// listening socket; the result cache is consistently sharded N ways
// (serve/cache.h ShardedResultCache — single-flight and byte-identical
// replay guarantees hold per shard), and each worker keeps its own
// request-latency sketch, merged deterministically in worker order by
// the `stats` method (the same KLL merge the campaign fabric uses).
//
// Mission sessions (serve/session.h): session.open resolves a scenario
// and pins a resident controller + plant state; session.step executes
// ONE control step on the connection thread — no pool dispatch, no
// admission queue, warm starts carried across frames — and returns the
// decision; session.close returns the accumulated report. Idle
// sessions are evicted LRU-with-TTL; drain drops the whole table after
// cancelling in-flight work.
//
// Observability (registry(), all under serve.*): queue depth gauge,
// request latency and queue-wait histograms AND quantile sketches
// (latency covers every run completion path — success, cache hit and
// error — and therefore includes queue wait), per-method request
// counters, per-code error counters, cache hit/miss/coalesced/eviction
// counters and byte/entry gauges, connection counter. The `stats`
// method returns the live latency/queue-wait quantiles plus per-name
// summaries of recently recorded trace spans; `trace_out` enables the
// span tracer for the daemon's lifetime and writes an otem.trace.v1
// Chrome trace on shutdown.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.h"
#include "exec/stop_token.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "sim/obs_sink.h"

namespace otem::serve {

struct ServerOptions {
  /// Maximum run requests queued or executing at once; further runs
  /// are refused with {"error":"overloaded"}.
  size_t queue_depth = 16;
  /// Worker pool width; 0 = exec::default_concurrency().
  size_t threads = 0;
  /// Result-cache budget in bytes; 0 disables caching.
  size_t cache_bytes = 64u << 20;
  /// How long drain waits for in-flight work before cancelling it.
  double drain_timeout_s = 5.0;
  /// Frames longer than this are refused (connection survives).
  size_t max_frame_bytes = 1u << 20;
  /// Acceptor workers over the shared listening socket; also the result
  /// cache's shard count. 1 = the single-worker daemon.
  size_t workers = 1;
  /// Resident mission-session ceiling; opening past it evicts the LRU
  /// session. 0 disables the session API (session.open refuses).
  size_t session_limit = 64;
  /// Idle time after which a session is evictable [s]; 0 disables the
  /// TTL sweep.
  double session_ttl_s = 300.0;
  /// When non-empty, the final metrics snapshot is written here on
  /// shutdown (schema otem.metrics.v1).
  std::string metrics_out;
  /// When non-empty, span tracing is enabled for the daemon's lifetime
  /// and a Chrome trace (schema otem.trace.v1) is written here on
  /// shutdown.
  std::string trace_out;
  /// Base key=value overrides applied under every request (the serve
  /// command line); request overrides win.
  Config base;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The transport-free core: one request frame in, one response frame
  /// out (no trailing newline). Never throws — every failure becomes a
  /// structured error response. Safe to call from many threads.
  /// `worker` attributes the request to one worker's latency sketch
  /// (clamped to the worker count; transports pass their acceptor's
  /// index).
  std::string handle_line(const std::string& line, size_t worker = 0);

  /// The response for a frame the codec refused as oversized.
  std::string oversized_response();

  /// Serve newline-framed requests from in_fd to out_fd until EOF or a
  /// stop; drains and flushes. Returns the process exit code (0).
  int serve_stdio(int in_fd = 0, int out_fd = 1);

  /// Bind `socket_path`, accept connections (one session thread each)
  /// until SIGINT/SIGTERM or request_stop(); drains, flushes, removes
  /// the socket file. Returns the process exit code (0).
  int serve_unix(const std::string& socket_path);

  /// Bind "host:port" (IPv4; "localhost" accepted, port 0 picks an
  /// ephemeral port — read it back via bound_port()) and accept TCP
  /// connections with TCP_NODELAY until a stop. Returns the process
  /// exit code (0).
  int serve_tcp(const std::string& host_port);

  /// The TCP port actually bound (after serve_tcp enters its accept
  /// loop); 0 until then. Lets tests bind port 0 and discover the
  /// ephemeral port.
  int bound_port() const {
    return bound_port_.load(std::memory_order_acquire);
  }

  /// Programmatic stop (what the signal handlers trigger): stop
  /// admitting runs and wake the accept loop. Idempotent, thread-safe.
  void request_stop();

  bool stopping() const;

  /// Wait drain_timeout_s for in-flight runs, then cancel the rest via
  /// their stop tokens and wait for them to unwind. Called by the
  /// serve loops; exposed for tests.
  void drain();

  size_t active_requests() const;
  obs::MetricsRegistry& registry() { return registry_; }

 private:
  std::string handle_run(const Request& request);
  std::string handle_session_open(const Request& request);
  std::string handle_session_step(const Request& request);
  std::string handle_session_close(const Request& request);
  std::string error_response(const Json& id, ErrorCode code,
                             const std::string& message);
  void session_loop(int in_fd, int out_fd, size_t worker);
  /// Shared serving loop behind serve_unix/serve_tcp: runs
  /// options_.workers acceptor loops over `listen_fd`, then drains.
  int serve_listener(int listen_fd, bool tcp);
  void accept_loop(int listen_fd, bool tcp, size_t worker);
  void shutdown_flush();

  bool try_admit();
  void release_admission();

  std::uint64_t register_inflight(const exec::StopSource& source);
  void unregister_inflight(std::uint64_t id);

  ServerOptions options_;
  /// Base overrides as plain pairs: each request builds a private
  /// Config from them, so concurrent requests never share a consumed-
  /// key set (Config copies share theirs, which would race).
  std::vector<std::pair<std::string, std::string>> base_pairs_;

  obs::MetricsRegistry registry_;
  ShardedResultCache cache_;
  SessionManager sessions_;
  /// One pre-resolved sim/solver instrument bundle shared by every run
  /// request (sharded instruments make concurrent runs safe), so the
  /// metrics method surfaces solver.qp_warm_hits & co fleet-wide.
  sim::DiagnosticsSink::Instruments run_instruments_;
  std::unique_ptr<exec::ThreadPool> pool_;

  std::atomic<bool> stop_{false};
  std::atomic<size_t> admitted_{0};

  mutable std::mutex inflight_mutex_;
  std::map<std::uint64_t, exec::StopSource> inflight_;
  std::uint64_t next_inflight_id_ = 0;

  std::mutex connections_mutex_;
  std::condition_variable connections_done_;
  size_t open_connections_ = 0;

  int wake_write_fd_ = -1;  ///< self-pipe: signal handler -> accept loop
  int wake_read_fd_ = -1;   ///< polled by every acceptor worker
  std::atomic<int> bound_port_{0};

  obs::Histogram& latency_us_;
  obs::Histogram& queue_wait_us_;
  /// Sketch twins of the two histograms: exact-bucket-free p50/p95/p99
  /// for the `stats` method and the otem.metrics.v1 "sketches" section.
  obs::Sketch& latency_sketch_;
  obs::Sketch& queue_wait_sketch_;
  /// session.step handling time (the headline sub-millisecond tier).
  obs::Sketch& session_step_sketch_;
  /// Per-acceptor-worker request latency, merged in worker order by the
  /// `stats` method.
  std::vector<obs::Sketch*> worker_latency_;
  obs::Gauge& queue_depth_;
};

}  // namespace otem::serve
