#include "sim/step_sink.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace otem::sim {

// --- MetricsAccumulator -------------------------------------------------

void MetricsAccumulator::begin(const RunContext& ctx) {
  result_ = RunResult{};
  dt_ = ctx.dt;
  steps_ = ctx.steps;
  t_max_k_ = ctx.spec.thermal.max_battery_temp_k;
  // Seed from the initial state: a pack that starts hot and only cools
  // still peaked at its starting temperature.
  result_.max_t_battery_k = ctx.initial.t_battery_k;
}

void MetricsAccumulator::record(const StepSample& sample) {
  const core::StepRecord& rec = sample.rec;
  result_.qloss_percent += rec.qloss_percent;
  result_.energy_battery_j += rec.e_bat_j;
  result_.energy_cap_j += rec.e_cap_j;
  result_.energy_cooling_j += rec.e_cooling_j;
  result_.energy_loss_j += rec.e_loss_j;
  if (!rec.feasible) ++result_.infeasible_steps;
  result_.unserved_energy_j += rec.unmet_w * dt_;
  result_.max_t_battery_k =
      std::max(result_.max_t_battery_k, sample.state.t_battery_k);
  if (sample.state.t_battery_k > t_max_k_)
    result_.thermal_violation_s += dt_;
}

void MetricsAccumulator::end(const core::PlantState& final_state) {
  result_.duration_s = static_cast<double>(steps_) * dt_;
  result_.energy_hees_j = result_.energy_battery_j + result_.energy_cap_j;
  result_.average_power_w = result_.energy_hees_j / result_.duration_s;
  result_.final_state = final_state;
}

// --- TraceRecorder ------------------------------------------------------

void TraceRecorder::begin(const RunContext& ctx) {
  dt_ = ctx.dt;
  auto reserve = [&](TimeSeries& ts) {
    ts = TimeSeries(ctx.dt, {});
    ts.reserve(ctx.steps);
  };
  reserve(trace_.t_battery_k);
  reserve(trace_.t_coolant_k);
  reserve(trace_.soc_percent);
  reserve(trace_.soe_percent);
  reserve(trace_.p_load_w);
  reserve(trace_.p_cooler_w);
  reserve(trace_.p_cap_w);
  reserve(trace_.q_bat_w);
  reserve(trace_.t_inlet_k);
  reserve(trace_.i_bat_a);
  reserve(trace_.qloss_percent);
  reserve(trace_.teb);
}

void TraceRecorder::record(const StepSample& sample) {
  const core::StepRecord& rec = sample.rec;
  trace_.t_battery_k.push_back(sample.state.t_battery_k);
  trace_.t_coolant_k.push_back(sample.state.t_coolant_k);
  trace_.soc_percent.push_back(sample.state.soc_percent);
  trace_.soe_percent.push_back(sample.state.soe_percent);
  trace_.p_load_w.push_back(rec.p_load_w);
  trace_.p_cooler_w.push_back(rec.p_cooler_w);
  trace_.p_cap_w.push_back(rec.e_cap_j / dt_);
  trace_.q_bat_w.push_back(rec.q_bat_w);
  trace_.t_inlet_k.push_back(rec.t_inlet_k);
  trace_.i_bat_a.push_back(rec.i_bat_a);
  trace_.qloss_percent.push_back(sample.qloss_cum_percent);
  trace_.teb.push_back(sample.teb);
}

// --- CsvStreamSink ------------------------------------------------------

CsvStreamSink::CsvStreamSink(const std::string& path, int precision)
    : path_(path), out_(path), precision_(precision) {
  OTEM_REQUIRE(out_.good(), "cannot open CSV stream output: " + path);
}

void CsvStreamSink::begin(const RunContext& ctx) {
  dt_ = ctx.dt;
  rows_ = 0;
  out_ << "t_s,p_load_w,p_cooler_w,p_cap_w,i_bat_a,tb_c,tc_c,"
          "soc_percent,soe_percent,qloss_percent,teb,q_bat_w,t_inlet_c\n";
}

void CsvStreamSink::record(const StepSample& sample) {
  const core::StepRecord& rec = sample.rec;
  const double cells[] = {
      static_cast<double>(sample.k) * dt_,
      rec.p_load_w,
      rec.p_cooler_w,
      rec.e_cap_j / dt_,
      rec.i_bat_a,
      sample.state.t_battery_k - 273.15,
      sample.state.t_coolant_k - 273.15,
      sample.state.soc_percent,
      sample.state.soe_percent,
      sample.qloss_cum_percent,
      sample.teb,
      rec.q_bat_w,
      rec.t_inlet_k - 273.15,
  };
  for (size_t i = 0; i < std::size(cells); ++i) {
    if (i) out_ << ',';
    out_ << strings::format_double(cells[i], precision_);
  }
  out_ << '\n';
  // A full disk surfaces here as soon as the stream's buffer flushes;
  // fail the run loudly instead of silently truncating telemetry.
  if (out_.fail())
    throw SimError("CSV stream write failed (disk full?): " + path_);
  ++rows_;
}

void CsvStreamSink::end(const core::PlantState&) {
  out_.flush();
  if (out_.fail())
    throw SimError("CSV stream write failed (disk full?): " + path_);
}

}  // namespace otem::sim
