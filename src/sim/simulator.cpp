#include "sim/simulator.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "sim/step_sink.h"

namespace otem::sim {

Simulator::Simulator(const core::SystemSpec& spec)
    : spec_(spec), teb_(spec) {}

RunResult Simulator::run(core::Methodology& methodology,
                         const TimeSeries& power_request,
                         const RunOptions& options) const {
  MetricsAccumulator metrics;
  TraceRecorder trace;
  std::vector<StepSink*> sinks{&metrics};
  if (options.record_trace) sinks.push_back(&trace);
  run_with_sinks(methodology, power_request, options, sinks);
  RunResult result = metrics.take();
  if (options.record_trace) result.trace = trace.take();
  return result;
}

void Simulator::run_with_sinks(core::Methodology& methodology,
                               const TimeSeries& power_request,
                               const RunOptions& options,
                               const std::vector<StepSink*>& sinks) const {
  OTEM_REQUIRE(!power_request.empty(), "empty power request trace");
  for (StepSink* sink : sinks)
    OTEM_REQUIRE(sink != nullptr, "null step sink attached");
  const double dt = power_request.dt();
  const size_t steps = power_request.size();

  core::PlantState state = options.initial;
  methodology.reset(state, power_request);

  const RunContext ctx{spec_, dt, steps, options.initial};
  for (StepSink* sink : sinks) sink->begin(ctx);

  // TEB costs a model evaluation per step; skip it unless some sink
  // actually consumes it (the trace/CSV sinks do, metrics does not).
  const bool want_teb =
      std::any_of(sinks.begin(), sinks.end(),
                  [](const StepSink* s) { return s->wants_teb(); });

  double qloss_cum = 0.0;
  for (size_t k = 0; k < steps; ++k) {
    const core::StepRecord rec =
        methodology.step(state, power_request[k], k, dt);
    qloss_cum += rec.qloss_percent;
    const double teb = want_teb
                           ? teb_.evaluate(state).combined()
                           : std::numeric_limits<double>::quiet_NaN();
    const StepSample sample{k, rec, state, qloss_cum, teb};
    for (StepSink* sink : sinks) sink->record(sample);
  }

  for (StepSink* sink : sinks) sink->end(state);
}

}  // namespace otem::sim
