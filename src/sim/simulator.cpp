#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "sim/step_sink.h"

namespace otem::sim {

Simulator::Simulator(const core::SystemSpec& spec)
    : spec_(spec), teb_(spec) {}

RunResult Simulator::run(core::Methodology& methodology,
                         const TimeSeries& power_request,
                         const RunOptions& options) const {
  MetricsAccumulator metrics;
  TraceRecorder trace;
  std::vector<StepSink*> sinks{&metrics};
  if (options.record_trace) sinks.push_back(&trace);
  run_with_sinks(methodology, power_request, options, sinks);
  RunResult result = metrics.take();
  if (options.record_trace) result.trace = trace.take();
  return result;
}

void Simulator::run_with_sinks(core::Methodology& methodology,
                               const TimeSeries& power_request,
                               const RunOptions& options,
                               const std::vector<StepSink*>& sinks) const {
  OTEM_REQUIRE(!power_request.empty(), "empty power request trace");
  for (StepSink* sink : sinks)
    OTEM_REQUIRE(sink != nullptr, "null step sink attached");
  const double dt = power_request.dt();
  const size_t steps = power_request.size();

  core::PlantState state = options.initial;
  methodology.reset(state, power_request);

  const RunContext ctx{spec_, dt, steps, options.initial};
  for (StepSink* sink : sinks) sink->begin(ctx);

  // TEB costs a model evaluation per step; skip it unless some sink
  // actually consumes it (the trace/CSV sinks do, metrics does not).
  const bool want_teb =
      std::any_of(sinks.begin(), sinks.end(),
                  [](const StepSink* s) { return s->wants_teb(); });
  // Same deal for step timing, but SAMPLED: each sink declares the
  // stride it wants timed (0 = none), and the loop clocks step k when
  // the gcd of those strides divides k. That keeps reactive baselines —
  // whose whole step is a few hundred ns — inside the instrumentation
  // overhead budget while still filling the latency histograms.
  size_t timing_stride = 0;
  if (obs::enabled()) {
    for (const StepSink* sink : sinks) {
      const size_t s = sink->timing_stride();
      if (s) timing_stride = timing_stride ? std::gcd(timing_stride, s) : s;
    }
  }
  // Tracing reuses the sampled step timings as sim.step spans — no
  // extra clock reads on already-timed steps. When tracing is on but
  // no sink asked for timing, sample at the diagnostics stride
  // (DiagnosticsSink::kTimingStride) so a trace_out= run still shows
  // the step cadence.
  const bool tracing = obs::trace_enabled();
  constexpr size_t kTraceStepStride = 64;
  if (tracing && timing_stride == 0) timing_stride = kTraceStepStride;

  // Diagnostics sinks only want EVENTFUL samples; splitting the chain
  // once here keeps the per-step loop free of per-sink predicates.
  std::vector<StepSink*> every_step, eventful_only;
  for (StepSink* sink : sinks)
    (sink->eventful_samples_only() ? eventful_only : every_step)
        .push_back(sink);

  const obs::TraceSpan run_span("sim.run");

  double qloss_cum = 0.0;
  // next_timed tracks the multiples of timing_stride without a per-step
  // modulo (a runtime-divisor div in the hottest loop of the codebase).
  size_t next_timed = timing_stride ? 0 : std::numeric_limits<size_t>::max();
  for (size_t k = 0; k < steps; ++k) {
    if (options.stop.stop_requested()) {
      // Cooperative cancellation: finalize every sink with the state as
      // of the last completed step, so streams close and totals are
      // consistent (just short), THEN report the abandonment.
      for (StepSink* sink : sinks) sink->end(state);
      throw SimCancelled(
          options.stop.deadline_expired()
              ? "simulation deadline expired at step " + std::to_string(k) +
                    "/" + std::to_string(steps)
              : "simulation cancelled at step " + std::to_string(k) + "/" +
                    std::to_string(steps));
    }
    const bool timed = k == next_timed;
    if (timed) next_timed += timing_stride;
    const double t0 = timed ? obs::now_us() : 0.0;
    const core::StepRecord rec =
        methodology.step(state, power_request[k], k, dt);
    const double step_us = timed ? obs::now_us() - t0 : 0.0;
    if (timed && tracing) obs::trace_emit("sim.step", t0, step_us);
    qloss_cum += rec.qloss_percent;
    const double teb = want_teb
                           ? teb_.evaluate(state).combined()
                           : std::numeric_limits<double>::quiet_NaN();
    const StepSample sample{k, rec, state, qloss_cum, teb, step_us};
    for (StepSink* sink : every_step) sink->record(sample);
    if (!eventful_only.empty() &&
        (timed || !rec.feasible || rec.solve.present || k + 1 == steps))
      for (StepSink* sink : eventful_only) sink->record(sample);
  }

  for (StepSink* sink : sinks) sink->end(state);
}

}  // namespace otem::sim
