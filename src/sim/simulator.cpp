#include "sim/simulator.h"

#include <algorithm>

#include "common/error.h"

namespace otem::sim {

Simulator::Simulator(const core::SystemSpec& spec)
    : spec_(spec), teb_(spec) {}

RunResult Simulator::run(core::Methodology& methodology,
                         const TimeSeries& power_request,
                         const RunOptions& options) const {
  OTEM_REQUIRE(!power_request.empty(), "empty power request trace");
  const double dt = power_request.dt();

  core::PlantState state = options.initial;
  methodology.reset(state, power_request);

  RunResult result;
  const size_t steps = power_request.size();
  auto reserve = [&](TimeSeries& ts) {
    ts = TimeSeries(dt, {});
    ts.reserve(steps);
  };
  if (options.record_trace) {
    reserve(result.trace.t_battery_k);
    reserve(result.trace.t_coolant_k);
    reserve(result.trace.soc_percent);
    reserve(result.trace.soe_percent);
    reserve(result.trace.p_load_w);
    reserve(result.trace.p_cooler_w);
    reserve(result.trace.p_cap_w);
    reserve(result.trace.q_bat_w);
    reserve(result.trace.t_inlet_k);
    reserve(result.trace.i_bat_a);
    reserve(result.trace.qloss_percent);
    reserve(result.trace.teb);
  }

  const double t_max = spec_.thermal.max_battery_temp_k;

  for (size_t k = 0; k < steps; ++k) {
    const core::StepRecord rec =
        methodology.step(state, power_request[k], k, dt);

    result.qloss_percent += rec.qloss_percent;
    result.energy_battery_j += rec.e_bat_j;
    result.energy_cap_j += rec.e_cap_j;
    result.energy_cooling_j += rec.e_cooling_j;
    result.energy_loss_j += rec.e_loss_j;
    if (!rec.feasible) ++result.infeasible_steps;
    result.unserved_energy_j += rec.unmet_w * dt;
    result.max_t_battery_k =
        std::max(result.max_t_battery_k, state.t_battery_k);
    if (state.t_battery_k > t_max) result.thermal_violation_s += dt;

    if (options.record_trace) {
      result.trace.t_battery_k.push_back(state.t_battery_k);
      result.trace.t_coolant_k.push_back(state.t_coolant_k);
      result.trace.soc_percent.push_back(state.soc_percent);
      result.trace.soe_percent.push_back(state.soe_percent);
      result.trace.p_load_w.push_back(rec.p_load_w);
      result.trace.p_cooler_w.push_back(rec.p_cooler_w);
      result.trace.p_cap_w.push_back(rec.e_cap_j / dt);
      result.trace.q_bat_w.push_back(rec.q_bat_w);
      result.trace.t_inlet_k.push_back(rec.t_inlet_k);
      result.trace.i_bat_a.push_back(rec.i_bat_a);
      result.trace.qloss_percent.push_back(result.qloss_percent);
      result.trace.teb.push_back(teb_.evaluate(state).combined());
    }
  }

  result.duration_s = static_cast<double>(steps) * dt;
  result.energy_hees_j = result.energy_battery_j + result.energy_cap_j;
  result.average_power_w = result.energy_hees_j / result.duration_s;
  result.final_state = state;
  return result;
}

}  // namespace otem::sim
