#include "sim/fleet.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem::sim {

namespace {
FleetStats stats_of(const std::vector<double>& values) {
  FleetStats s;
  OTEM_ENSURE(!values.empty(), "fleet stats over empty sample");
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    s.mean += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean /= static_cast<double>(values.size());
  for (double v : values) s.stddev += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(s.stddev / static_cast<double>(values.size()));
  return s;
}
}  // namespace

FleetResult evaluate_fleet(
    const core::SystemSpec& base_spec,
    const std::function<std::unique_ptr<core::Methodology>(
        const core::SystemSpec&)>& factory,
    const FleetOptions& options) {
  OTEM_REQUIRE(options.missions >= 1, "fleet needs at least one mission");
  OTEM_REQUIRE(options.ambient_min_k <= options.ambient_max_k,
               "fleet ambient range is inverted");

  Rng rng(options.seed);
  FleetResult out;
  std::vector<double> qloss, power, tb;

  for (size_t m = 0; m < options.missions; ++m) {
    MissionOutcome mission;
    mission.route_seed = rng.next_u64();
    mission.ambient_k =
        rng.uniform(options.ambient_min_k, options.ambient_max_k);
    const double duration =
        rng.uniform(options.min_duration_s, options.max_duration_s);
    const double soe0 = rng.uniform(options.soe0_min, options.soe0_max);

    core::SystemSpec spec = base_spec;
    spec.ambient_k = mission.ambient_k;

    const TimeSeries speed = vehicle::generate_synthetic(
        mission.route_seed, duration, options.max_speed_mps);
    const TimeSeries load =
        vehicle::Powertrain(spec.vehicle).power_trace(speed);
    mission.duration_s = load.duration();
    mission.distance_m = vehicle::stats_of(speed).distance_m;

    RunOptions ropt;
    ropt.record_trace = false;
    ropt.initial.t_battery_k = mission.ambient_k;  // soaked
    ropt.initial.t_coolant_k = mission.ambient_k;
    ropt.initial.soe_percent = soe0;

    auto methodology = factory(spec);
    mission.result = Simulator(spec).run(*methodology, load, ropt);

    qloss.push_back(mission.result.qloss_percent);
    power.push_back(mission.result.average_power_w);
    tb.push_back(mission.result.max_t_battery_k);
    out.total_violation_s += mission.result.thermal_violation_s;
    out.total_unserved_j += mission.result.unserved_energy_j;
    out.missions.push_back(std::move(mission));
  }

  out.qloss_percent = stats_of(qloss);
  out.average_power_w = stats_of(power);
  out.max_t_battery_k = stats_of(tb);
  return out;
}

}  // namespace otem::sim
