#include "sim/fleet.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "sim/obs_sink.h"
#include "sim/step_sink.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem::sim {

namespace {
// One-pass Welford mean/variance: numerically stable against the
// catastrophic cancellation a naive sum-of-squares suffers when the
// spread is small relative to the mean (qloss values cluster tightly),
// and a single sweep over the data.
FleetStats stats_of(const std::vector<double>& values) {
  OTEM_ENSURE(!values.empty(), "fleet stats over empty sample");
  FleetStats s;
  s.min = values.front();
  s.max = values.front();
  double mean = 0.0;
  double m2 = 0.0;
  size_t count = 0;
  for (double v : values) {
    ++count;
    const double delta = v - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (v - mean);
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = mean;
  // Population stddev, matching the previous two-pass definition; a
  // single sample has zero spread by construction.
  s.stddev = count > 1
                 ? std::sqrt(m2 / static_cast<double>(count))
                 : 0.0;
  return s;
}

/// Per-mission conditions, drawn serially before dispatch so the draw
/// sequence (and therefore every result) is independent of the
/// execution width. The draw ORDER here must stay exactly route_seed,
/// ambient, duration, soe0 per mission — it defines the fleet for a
/// given seed and existing results depend on it.
struct MissionDraw {
  std::uint64_t route_seed = 0;
  double ambient_k = 0.0;
  double duration_s = 0.0;
  double soe0 = 0.0;
};
}  // namespace

FleetResult evaluate_fleet(
    const core::SystemSpec& base_spec,
    const std::function<std::unique_ptr<core::Methodology>(
        const core::SystemSpec&)>& factory,
    const FleetOptions& options) {
  OTEM_REQUIRE(options.missions >= 1, "fleet needs at least one mission");
  OTEM_REQUIRE(options.ambient_min_k <= options.ambient_max_k,
               "fleet ambient range is inverted");

  Rng rng(options.seed);
  std::vector<MissionDraw> draws(options.missions);
  for (MissionDraw& d : draws) {
    d.route_seed = rng.next_u64();
    d.ambient_k = rng.uniform(options.ambient_min_k, options.ambient_max_k);
    d.duration_s = rng.uniform(options.min_duration_s, options.max_duration_s);
    d.soe0 = rng.uniform(options.soe0_min, options.soe0_max);
  }

  FleetResult out;
  out.missions.resize(options.missions);

  // Resolve the shared-registry instruments ONCE; every mission's sink
  // reuses the bundle instead of paying 15 registry lookups each.
  std::unique_ptr<DiagnosticsSink::Instruments> shared_instruments;
  if (options.metrics)
    shared_instruments = std::make_unique<DiagnosticsSink::Instruments>(
        *options.metrics, options.metrics_prefix);

  // Missions are independent given their draw: each builds its own
  // spec, methodology and simulator, and writes only its own slot.
  exec::parallel_for(
      options.missions,
      [&](size_t m) {
        const MissionDraw& d = draws[m];
        MissionOutcome& mission = out.missions[m];
        mission.route_seed = d.route_seed;
        mission.ambient_k = d.ambient_k;

        core::SystemSpec spec = base_spec;
        spec.ambient_k = d.ambient_k;

        const TimeSeries speed = vehicle::generate_synthetic(
            d.route_seed, d.duration_s, options.max_speed_mps);
        const TimeSeries load =
            vehicle::Powertrain(spec.vehicle).power_trace(speed);
        mission.duration_s = load.duration();
        mission.distance_m = vehicle::stats_of(speed).distance_m;

        RunOptions ropt;
        ropt.record_trace = false;
        ropt.initial.t_battery_k = d.ambient_k;  // soaked
        ropt.initial.t_coolant_k = d.ambient_k;
        ropt.initial.soe_percent = d.soe0;

        auto methodology = factory(spec);
        // Sink pipeline instead of run(): metrics always, plus an
        // optional constant-memory telemetry stream — never an in-RAM
        // trace, so peak memory is independent of mission length.
        MetricsAccumulator metrics;
        std::vector<StepSink*> sinks{&metrics};
        std::unique_ptr<CsvStreamSink> telemetry;
        if (!options.telemetry_csv_prefix.empty()) {
          telemetry = std::make_unique<CsvStreamSink>(
              options.telemetry_csv_prefix + "mission_" +
              std::to_string(m) + ".csv");
          sinks.push_back(telemetry.get());
        }
        // Fleet-aggregate diagnostics: all missions write into the one
        // shared registry concurrently (sharded instruments make that
        // safe); the per-mission registry captures a local view.
        std::unique_ptr<DiagnosticsSink> fleet_diag;
        if (shared_instruments) {
          fleet_diag =
              std::make_unique<DiagnosticsSink>(*shared_instruments);
          sinks.push_back(fleet_diag.get());
        }
        std::unique_ptr<obs::MetricsRegistry> local;
        std::unique_ptr<DiagnosticsSink> local_diag;
        if (!options.metrics_json_prefix.empty()) {
          local = std::make_unique<obs::MetricsRegistry>();
          local_diag = std::make_unique<DiagnosticsSink>(*local);
          sinks.push_back(local_diag.get());
        }
        Simulator(spec).run_with_sinks(*methodology, load, ropt, sinks);
        mission.result = metrics.take();
        if (local)
          obs::write_metrics_json(options.metrics_json_prefix + "mission_" +
                                      std::to_string(m) + ".metrics.json",
                                  *local);
      },
      options.threads);

  // Reduce serially in mission order so accumulation is bit-identical
  // regardless of which thread finished first.
  std::vector<double> qloss, power, tb;
  qloss.reserve(options.missions);
  power.reserve(options.missions);
  tb.reserve(options.missions);
  for (const MissionOutcome& mission : out.missions) {
    qloss.push_back(mission.result.qloss_percent);
    power.push_back(mission.result.average_power_w);
    tb.push_back(mission.result.max_t_battery_k);
    out.total_violation_s += mission.result.thermal_violation_s;
    out.total_unserved_j += mission.result.unserved_energy_j;
  }

  out.qloss_percent = stats_of(qloss);
  out.average_power_w = stats_of(power);
  out.max_t_battery_k = stats_of(tb);
  return out;
}

}  // namespace otem::sim
