#include "sim/fleet.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"
#include "sim/obs_sink.h"
#include "sim/plant_batch.h"
#include "sim/step_sink.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem::sim {

namespace {
// One-pass Welford mean/variance: numerically stable against the
// catastrophic cancellation a naive sum-of-squares suffers when the
// spread is small relative to the mean (qloss values cluster tightly),
// and constant memory — values stream through, nothing is retained.
class StreamingStats {
 public:
  void add(double v) {
    if (count_ == 0) {
      min_ = v;
      max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    ++count_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
  }

  FleetStats stats() const {
    OTEM_ENSURE(count_ > 0, "fleet stats over empty sample");
    FleetStats s;
    s.mean = mean_;
    // Population stddev, matching the previous two-pass definition; a
    // single sample has zero spread by construction.
    s.stddev =
        count_ > 1 ? std::sqrt(m2_ / static_cast<double>(count_)) : 0.0;
    s.min = min_;
    s.max = max_;
    return s;
  }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Per-mission conditions, drawn serially before dispatch so the draw
/// sequence (and therefore every result) is independent of the
/// execution width. The draw ORDER here must stay exactly route_seed,
/// ambient, duration, soe0 per mission — it defines the fleet for a
/// given seed and existing results depend on it.
struct MissionDraw {
  std::uint64_t route_seed = 0;
  double ambient_k = 0.0;
  double duration_s = 0.0;
  double soe0 = 0.0;
};

std::vector<MissionDraw> draw_missions(const FleetOptions& options) {
  OTEM_REQUIRE(options.missions >= 1, "fleet needs at least one mission");
  OTEM_REQUIRE(options.ambient_min_k <= options.ambient_max_k,
               "fleet ambient range is inverted");
  Rng rng(options.seed);
  std::vector<MissionDraw> draws(options.missions);
  for (MissionDraw& d : draws) {
    d.route_seed = rng.next_u64();
    d.ambient_k = rng.uniform(options.ambient_min_k, options.ambient_max_k);
    d.duration_s = rng.uniform(options.min_duration_s, options.max_duration_s);
    d.soe0 = rng.uniform(options.soe0_min, options.soe0_max);
  }
  return draws;
}

// Serial, mission-order reduction shared by the scalar and batched
// paths, so accumulation is bit-identical regardless of which thread
// (or lane) finished first. Streams in one pass — no per-metric
// staging vectors.
void reduce_fleet(FleetResult& out) {
  StreamingStats qloss, power, tb;
  for (const MissionOutcome& mission : out.missions) {
    qloss.add(mission.result.qloss_percent);
    power.add(mission.result.average_power_w);
    tb.add(mission.result.max_t_battery_k);
    out.total_violation_s += mission.result.thermal_violation_s;
    out.total_unserved_j += mission.result.unserved_energy_j;
  }
  out.qloss_percent = qloss.stats();
  out.average_power_w = power.stats();
  out.max_t_battery_k = tb.stats();
}
}  // namespace

FleetResult evaluate_fleet(
    const core::SystemSpec& base_spec,
    const std::function<std::unique_ptr<core::Methodology>(
        const core::SystemSpec&)>& factory,
    const FleetOptions& options) {
  const std::vector<MissionDraw> draws = draw_missions(options);

  FleetResult out;
  out.missions.resize(options.missions);

  // Resolve the shared-registry instruments ONCE; every mission's sink
  // reuses the bundle instead of paying 15 registry lookups each.
  std::unique_ptr<DiagnosticsSink::Instruments> shared_instruments;
  if (options.metrics)
    shared_instruments = std::make_unique<DiagnosticsSink::Instruments>(
        *options.metrics, options.metrics_prefix);

  // Missions are independent given their draw: each builds its own
  // spec, methodology and simulator, and writes only its own slot.
  exec::parallel_for(
      options.missions,
      [&](size_t m) {
        const obs::TraceSpan mission_span("fleet.mission");
        const MissionDraw& d = draws[m];
        MissionOutcome& mission = out.missions[m];
        mission.route_seed = d.route_seed;
        mission.ambient_k = d.ambient_k;

        core::SystemSpec spec = base_spec;
        spec.ambient_k = d.ambient_k;

        const TimeSeries speed = vehicle::generate_synthetic(
            d.route_seed, d.duration_s, options.max_speed_mps);
        const TimeSeries load =
            vehicle::Powertrain(spec.vehicle).power_trace(speed);
        mission.duration_s = load.duration();
        mission.distance_m = vehicle::stats_of(speed).distance_m;

        RunOptions ropt;
        ropt.record_trace = false;
        ropt.initial.t_battery_k = d.ambient_k;  // soaked
        ropt.initial.t_coolant_k = d.ambient_k;
        ropt.initial.soe_percent = d.soe0;

        auto methodology = factory(spec);
        // Sink pipeline instead of run(): metrics always, plus an
        // optional constant-memory telemetry stream — never an in-RAM
        // trace, so peak memory is independent of mission length.
        MetricsAccumulator metrics;
        std::vector<StepSink*> sinks{&metrics};
        std::unique_ptr<CsvStreamSink> telemetry;
        if (!options.telemetry_csv_prefix.empty()) {
          telemetry = std::make_unique<CsvStreamSink>(
              options.telemetry_csv_prefix + "mission_" +
              std::to_string(m) + ".csv");
          sinks.push_back(telemetry.get());
        }
        // Fleet-aggregate diagnostics: all missions write into the one
        // shared registry concurrently (sharded instruments make that
        // safe); the per-mission registry captures a local view.
        std::unique_ptr<DiagnosticsSink> fleet_diag;
        if (shared_instruments) {
          fleet_diag =
              std::make_unique<DiagnosticsSink>(*shared_instruments);
          sinks.push_back(fleet_diag.get());
        }
        std::unique_ptr<obs::MetricsRegistry> local;
        std::unique_ptr<DiagnosticsSink> local_diag;
        if (!options.metrics_json_prefix.empty()) {
          local = std::make_unique<obs::MetricsRegistry>();
          local_diag = std::make_unique<DiagnosticsSink>(*local);
          sinks.push_back(local_diag.get());
        }
        Simulator(spec).run_with_sinks(*methodology, load, ropt, sinks);
        mission.result = metrics.take();
        if (local)
          obs::write_metrics_json(options.metrics_json_prefix + "mission_" +
                                      std::to_string(m) + ".metrics.json",
                                  *local);
      },
      options.threads);

  reduce_fleet(out);
  return out;
}

FleetResult evaluate_fleet_batched(
    const core::SystemSpec& base_spec,
    const std::function<std::unique_ptr<core::BatchMethodology>(
        const core::SystemSpec&, size_t lanes)>& batch_factory,
    const FleetOptions& options) {
  OTEM_REQUIRE(options.batch_lanes >= 1, "fleet needs >= 1 batch lane");
  const std::vector<MissionDraw> draws = draw_missions(options);

  FleetResult out;
  out.missions.resize(options.missions);

  std::unique_ptr<DiagnosticsSink::Instruments> shared_instruments;
  if (options.metrics)
    shared_instruments = std::make_unique<DiagnosticsSink::Instruments>(
        *options.metrics, options.metrics_prefix);

  // One slot per mission, pre-sized so addresses stay stable while a
  // PlantBatch borrows them. A slot is prepared (route, load, sinks)
  // by the worker that claims it, just before its lane activates.
  struct MissionSlot {
    BatchMission mission;
    MetricsAccumulator metrics;
    std::unique_ptr<CsvStreamSink> telemetry;
    std::unique_ptr<DiagnosticsSink> fleet_diag;
    std::unique_ptr<obs::MetricsRegistry> local;
    std::unique_ptr<DiagnosticsSink> local_diag;
  };
  std::vector<MissionSlot> slots(options.missions);

  auto prepare = [&](size_t m) -> BatchMission* {
    // Lane packing/backfill: called whenever a worker's PlantBatch
    // claims the next mission off the shared cursor.
    const obs::TraceSpan prepare_span("fleet.batch.prepare");
    const MissionDraw& d = draws[m];
    MissionOutcome& mission = out.missions[m];
    mission.route_seed = d.route_seed;
    mission.ambient_k = d.ambient_k;

    MissionSlot& slot = slots[m];
    slot.mission.spec = base_spec;
    slot.mission.spec.ambient_k = d.ambient_k;

    const TimeSeries speed = vehicle::generate_synthetic(
        d.route_seed, d.duration_s, options.max_speed_mps);
    slot.mission.load =
        vehicle::Powertrain(slot.mission.spec.vehicle).power_trace(speed);
    mission.duration_s = slot.mission.load.duration();
    mission.distance_m = vehicle::stats_of(speed).distance_m;

    slot.mission.initial.t_battery_k = d.ambient_k;  // soaked
    slot.mission.initial.t_coolant_k = d.ambient_k;
    slot.mission.initial.soe_percent = d.soe0;

    slot.mission.sinks = {&slot.metrics};
    if (!options.telemetry_csv_prefix.empty()) {
      slot.telemetry = std::make_unique<CsvStreamSink>(
          options.telemetry_csv_prefix + "mission_" + std::to_string(m) +
          ".csv");
      slot.mission.sinks.push_back(slot.telemetry.get());
    }
    if (shared_instruments) {
      slot.fleet_diag =
          std::make_unique<DiagnosticsSink>(*shared_instruments);
      slot.mission.sinks.push_back(slot.fleet_diag.get());
    }
    if (!options.metrics_json_prefix.empty()) {
      slot.local = std::make_unique<obs::MetricsRegistry>();
      slot.local_diag = std::make_unique<DiagnosticsSink>(*slot.local);
      slot.mission.sinks.push_back(slot.local_diag.get());
    }
    return &slot.mission;
  };

  // One PlantBatch per worker; workers claim missions from a shared
  // cursor. Lane packing therefore depends on thread timing, but each
  // mission's arithmetic touches only its own lane, so results are
  // independent of the packing (and of the thread count).
  size_t workers =
      options.threads ? options.threads : exec::default_concurrency();
  workers = std::max<size_t>(1, std::min(workers, options.missions));

  std::atomic<size_t> cursor{0};
  std::vector<PlantBatchCounters> counters(workers);
  exec::parallel_for(
      workers,
      [&](size_t w) {
        const obs::TraceSpan worker_span("fleet.batch.worker");
        PlantBatch batch(batch_factory(base_spec, options.batch_lanes));
        batch.run([&]() -> BatchMission* {
          const size_t m = cursor.fetch_add(1, std::memory_order_relaxed);
          return m < options.missions ? prepare(m) : nullptr;
        });
        counters[w] = batch.counters();
      },
      workers);

  for (size_t m = 0; m < options.missions; ++m) {
    out.missions[m].result = slots[m].metrics.take();
    if (slots[m].local)
      obs::write_metrics_json(options.metrics_json_prefix + "mission_" +
                                  std::to_string(m) + ".metrics.json",
                              *slots[m].local);
  }

  if (options.metrics) {
    PlantBatchCounters total;
    for (const PlantBatchCounters& c : counters) {
      total.batch_steps += c.batch_steps;
      total.lane_steps += c.lane_steps;
      total.backfills += c.backfills;
      total.missions += c.missions;
    }
    options.metrics->counter(options.metrics_prefix + "batch_lanes_active")
        .add(total.lane_steps);
    options.metrics->counter(options.metrics_prefix + "batch_backfills")
        .add(total.backfills);
    options.metrics->counter(options.metrics_prefix + "batch_steps")
        .add(total.batch_steps);
  }

  reduce_fleet(out);
  return out;
}

}  // namespace otem::sim
