#include "sim/metrics.h"

#include <limits>

#include "common/error.h"
#include "common/units.h"

namespace otem::sim {

double relative_capacity_loss_percent(const RunResult& result,
                                      const RunResult& baseline) {
  OTEM_REQUIRE(baseline.qloss_percent > 0.0,
               "baseline run accumulated no capacity loss");
  return 100.0 * result.qloss_percent / baseline.qloss_percent;
}

double missions_to_end_of_life(const RunResult& result,
                               const battery::CellParams& cell) {
  const battery::CapacityFadeModel fade(cell);
  return fade.missions_to_end_of_life(result.qloss_percent);
}

double lifetime_improvement_percent(const RunResult& result,
                                    const RunResult& baseline) {
  // Lifetime scales inversely with per-mission loss. A run that aged
  // the battery not at all (e.g. the whole mission served from the
  // ultracapacitor) has unbounded improvement.
  if (result.qloss_percent <= 0.0)
    return std::numeric_limits<double>::infinity();
  return 100.0 * (baseline.qloss_percent / result.qloss_percent - 1.0);
}

double estimated_range_km(const RunResult& result,
                          const core::SystemSpec& spec, double distance_m) {
  OTEM_REQUIRE(distance_m > 1.0, "mission covers no distance");
  OTEM_REQUIRE(result.energy_hees_j > 0.0, "mission consumed no energy");
  const battery::PackModel pack(spec.battery);
  // Usable window: C4 keeps SoC above 20 %.
  const double usable_j = pack.nominal_energy_j() * 0.8;
  const double j_per_m = result.energy_hees_j / distance_m;
  return units::m_to_km(usable_j / j_per_m);
}

}  // namespace otem::sim
