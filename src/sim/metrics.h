// metrics.h — derived evaluation metrics for the paper's figures.
#pragma once

#include <string>
#include <vector>

#include "battery/aging.h"
#include "sim/simulator.h"

namespace otem::sim {

/// Capacity loss of `result` as a percentage of `baseline`'s (the
/// paper's Fig. 8 / Table I "Capacity Loss (%)" normalisation).
double relative_capacity_loss_percent(const RunResult& result,
                                      const RunResult& baseline);

/// Battery lifetime in repetitions of the simulated mission until the
/// 20 % end-of-life threshold.
double missions_to_end_of_life(const RunResult& result,
                               const battery::CellParams& cell);

/// Battery-lifetime improvement of `result` over `baseline` in percent
/// (positive = longer life), from the capacity-loss ratio.
double lifetime_improvement_percent(const RunResult& result,
                                    const RunResult& baseline);

/// Driving-range estimate [km]: usable pack energy over the net
/// consumption rate of this run.
double estimated_range_km(const RunResult& result,
                          const core::SystemSpec& spec, double distance_m);

/// Row used by the comparison benches: one methodology on one cycle.
struct ComparisonRow {
  std::string methodology;
  std::string cycle;
  double average_power_w = 0.0;
  double capacity_loss_percent_rel = 0.0;  ///< vs the parallel baseline
  double qloss_percent_abs = 0.0;
  double max_t_battery_k = 0.0;
  double thermal_violation_s = 0.0;
  double cooling_energy_j = 0.0;
  size_t infeasible_steps = 0;
};

}  // namespace otem::sim
