#include "sim/plant_batch.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace otem::sim {

PlantBatch::PlantBatch(std::unique_ptr<core::BatchMethodology> methodology)
    : methodology_(std::move(methodology)),
      state_(methodology_ ? methodology_->lanes() : 0) {
  OTEM_REQUIRE(methodology_ != nullptr,
               "PlantBatch needs a batch methodology");
  const size_t n = methodology_->lanes();
  OTEM_REQUIRE(n >= 1, "PlantBatch needs >= 1 lane");
  lane_.resize(n);
  active_.assign(n, 0);
  p_.assign(n, 0.0);
  rec_.resize(n);
}

bool PlantBatch::activate(size_t lane, BatchMission* mission) {
  if (!mission) return false;
  OTEM_REQUIRE(!mission->load.empty(), "empty power request trace");
  for (StepSink* sink : mission->sinks)
    OTEM_REQUIRE(sink != nullptr, "null step sink attached");
  const double dt = mission->load.dt();
  if (dt_ == 0.0) dt_ = dt;
  OTEM_REQUIRE(dt == dt_, "batch missions must share one step period");

  Lane& ln = lane_[lane];
  ln.mission = mission;
  ln.k = 0;
  ln.steps = mission->load.size();
  ln.qloss_cum = 0.0;
  ln.want_teb =
      std::any_of(mission->sinks.begin(), mission->sinks.end(),
                  [](const StepSink* s) { return s->wants_teb(); });
  ln.teb.reset();
  if (ln.want_teb) ln.teb.emplace(mission->spec);
  ln.every_step.clear();
  ln.eventful_only.clear();
  for (StepSink* sink : mission->sinks)
    (sink->eventful_samples_only() ? ln.eventful_only : ln.every_step)
        .push_back(sink);

  methodology_->reset_lane(lane, mission->spec.ambient_k);
  state_.scatter(lane, mission->initial);
  const RunContext ctx{mission->spec, dt_, ln.steps, mission->initial};
  for (StepSink* sink : mission->sinks) sink->begin(ctx);

  active_[lane] = 1;
  ++live_;
  return true;
}

void PlantBatch::retire(size_t lane) {
  Lane& ln = lane_[lane];
  const core::PlantState final_state = state_.gather(lane);
  for (StepSink* sink : ln.mission->sinks) sink->end(final_state);
  ln.mission = nullptr;
  active_[lane] = 0;
  --live_;
  ++counters_.missions;
}

void PlantBatch::run(const MissionSource& source) {
  OTEM_REQUIRE(source, "PlantBatch needs a mission source");
  OTEM_REQUIRE(live_ == 0, "PlantBatch::run is not reentrant");
  const size_t n = lanes();
  dt_ = 0.0;  // each run() may use a fresh (but internally uniform) dt

  // Initial fill, lane 0 upward.
  for (size_t l = 0; l < n && activate(l, source()); ++l) {
  }

  while (live_ > 0) {
    // Gather this sweep's power requests; parked lanes draw 0 W.
    for (size_t l = 0; l < n; ++l)
      p_[l] = active_[l] ? lane_[l].mission->load[lane_[l].k] : 0.0;

    methodology_->step_lanes(state_, p_.data(), active_.data(), dt_,
                             rec_.data());
    ++counters_.batch_steps;
    counters_.lane_steps += live_;

    for (size_t l = 0; l < n; ++l) {
      if (!active_[l]) continue;
      Lane& ln = lane_[l];
      const core::StepRecord& rec = rec_[l];
      ln.qloss_cum += rec.qloss_percent;
      const double teb =
          ln.want_teb ? ln.teb->evaluate(rec.state_after).combined()
                      : std::numeric_limits<double>::quiet_NaN();
      // rec.state_after carries the post-step state — the same values
      // the scalar loop passes as StepSample::state.
      const StepSample sample{ln.k,  rec, rec.state_after,
                              ln.qloss_cum, teb, 0.0};
      for (StepSink* sink : ln.every_step) sink->record(sample);
      if (!ln.eventful_only.empty() &&
          (!rec.feasible || rec.solve.present || ln.k + 1 == ln.steps))
        for (StepSink* sink : ln.eventful_only) sink->record(sample);

      if (++ln.k == ln.steps) {
        retire(l);
        if (activate(l, source())) ++counters_.backfills;
      }
    }
  }
}

void PlantBatch::run(std::vector<BatchMission>& missions) {
  size_t next = 0;
  run([&]() -> BatchMission* {
    return next < missions.size() ? &missions[next++] : nullptr;
  });
}

}  // namespace otem::sim
