// plant_batch.h — lockstep lane scheduler over a BatchMethodology.
//
// A PlantBatch owns a core::PlantLanes arena and steps up to `lanes`
// missions in lockstep: every sweep advances all live lanes one plant
// step through the batch methodology's flat SoA kernels. When a lane's
// mission finishes it is retired (sinks finalized) and immediately
// backfilled from the mission source, so lanes stay occupied until the
// queue drains. The arena and scratch are reused across missions and
// across run() calls — steady-state stepping allocates nothing.
//
// Sink protocol: each mission's StepSinks get the same begin / record /
// end sequence the scalar Simulator::run_with_sinks delivers, with the
// same eventful-sample split. Two deliberate differences: batch steps
// are never wall-clock timed (step_time_us is always 0 and "timed"
// never makes a sample eventful — per-lane timing inside a lockstep
// sweep is meaningless), and cooperative stop tokens are not consulted
// (fleet batches are short-lived). MetricsAccumulator consumes every
// sample, so RunResults are bit-identical to the scalar oracle.
//
// Every sink's begin() runs at lane activation — including backfill
// activation — so per-run accumulators seeded from the initial state
// (e.g. RunResult::max_t_battery_k) can never inherit a previous
// occupant's extrema.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/timeseries.h"
#include "core/batch_methodology.h"
#include "core/teb.h"
#include "sim/step_sink.h"

namespace otem::sim {

/// One mission queued into a PlantBatch. `spec` must match the batch
/// methodology's construction spec in every parameter except ambient_k
/// (the fleet's per-mission draw) — lanes share one model instance, so
/// a divergent spec would silently evaluate the wrong physics. All
/// loads in one batch must share the same dt (lockstep sweeps advance
/// one shared dt); mission lengths may differ freely.
struct BatchMission {
  core::SystemSpec spec;
  TimeSeries load;
  core::PlantState initial;
  std::vector<StepSink*> sinks;
};

/// Utilization counters for one PlantBatch (monotonic across run()s).
struct PlantBatchCounters {
  std::uint64_t batch_steps = 0;  ///< lockstep sweeps executed
  std::uint64_t lane_steps = 0;   ///< mission steps served (sum over sweeps)
  std::uint64_t backfills = 0;    ///< lane re-activations after initial fill
  std::uint64_t missions = 0;     ///< missions completed
};

class PlantBatch {
 public:
  /// Pull-model mission feed: return the next mission to run, or
  /// nullptr when the queue is drained. Returned missions must stay
  /// alive (stable address) until run() returns — RunContext and the
  /// step loop borrow spec and load.
  using MissionSource = std::function<BatchMission*()>;

  explicit PlantBatch(std::unique_ptr<core::BatchMethodology> methodology);

  size_t lanes() const { return state_.lanes(); }
  const core::BatchMethodology& methodology() const { return *methodology_; }
  const PlantBatchCounters& counters() const { return counters_; }

  /// Run every mission `source` yields to completion.
  void run(const MissionSource& source);

  /// Convenience: run a pre-built mission vector (in order).
  void run(std::vector<BatchMission>& missions);

 private:
  struct Lane {
    BatchMission* mission = nullptr;
    size_t k = 0;           ///< next step index
    size_t steps = 0;       ///< mission length
    double qloss_cum = 0.0;
    bool want_teb = false;
    std::optional<core::TebMetric> teb;
    std::vector<StepSink*> every_step;
    std::vector<StepSink*> eventful_only;
  };

  /// Arm `lane` with `mission`: validates dt, resets per-lane
  /// controller state, scatters the initial plant state and runs every
  /// sink's begin(). Returns false when mission == nullptr.
  bool activate(size_t lane, BatchMission* mission);
  void retire(size_t lane);

  std::unique_ptr<core::BatchMethodology> methodology_;
  core::PlantLanes state_;
  std::vector<Lane> lane_;
  std::vector<unsigned char> active_;
  std::vector<double> p_;  ///< per-lane power request this sweep
  std::vector<core::StepRecord> rec_;
  double dt_ = 0.0;        ///< shared step period (from the first mission)
  size_t live_ = 0;        ///< currently active lane count
  PlantBatchCounters counters_;
};

}  // namespace otem::sim
