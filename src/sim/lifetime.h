// lifetime.h — long-horizon battery-lifetime projection.
//
// The paper reports Battery LifeTime (BLT) improvements from
// single-mission capacity-loss ratios. This extension closes the loop
// over the battery's life: the mission is re-simulated on a
// progressively degraded pack (capacity scaled by the accumulated
// loss), because a faded pack works at higher C-rates and ages FASTER
// — lifetime is shorter than naive loss-ratio extrapolation suggests,
// and good management compounds.
#pragma once

#include <functional>
#include <vector>

#include "core/system_spec.h"
#include "sim/simulator.h"

namespace otem::sim {

struct LifetimeOptions {
  /// Stop at this total capacity loss [%] — the paper's 20 % EOL.
  double end_of_life_percent = 20.0;

  /// Re-simulate the mission after every `missions_per_epoch` missions,
  /// scaling within an epoch by the epoch's per-mission loss.
  double missions_per_epoch = 250.0;

  /// Hard cap on epochs (protects against ~zero-loss missions).
  size_t max_epochs = 400;
};

struct LifetimePoint {
  double missions = 0.0;         ///< missions completed so far
  double capacity_loss_percent = 0.0;
  double capacity_ah = 0.0;      ///< pack capacity at this point
  double mission_energy_j = 0.0; ///< HEES energy of the epoch's mission
};

struct LifetimeResult {
  std::vector<LifetimePoint> curve;  ///< one point per epoch
  double missions_to_eol = 0.0;
  double km_to_eol = 0.0;            ///< given the mission distance
  bool reached_eol = false;          ///< false if max_epochs hit first
};

/// Project the battery's life driving `power` repeatedly under the
/// methodology produced by `make_methodology` (called fresh for each
/// degraded spec). `mission_distance_m` scales the km figure.
LifetimeResult project_lifetime(
    const core::SystemSpec& spec, const TimeSeries& power,
    const std::function<std::unique_ptr<core::Methodology>(
        const core::SystemSpec&)>& make_methodology,
    double mission_distance_m, const LifetimeOptions& options = {});

}  // namespace otem::sim
