#include "sim/obs_sink.h"

namespace otem::sim {

// --- DiagnosticsSink ----------------------------------------------------

DiagnosticsSink::Instruments::Instruments(obs::MetricsRegistry& registry,
                                          const std::string& prefix)
    : steps(registry.counter(prefix + "sim.steps")),
      infeasible(registry.counter(prefix + "sim.infeasible_steps")),
      solves(registry.counter(prefix + "solver.solves")),
      fallbacks(registry.counter(prefix + "solver.fallbacks")),
      nonconverged(registry.counter(prefix + "solver.nonconverged")),
      rho_updates(registry.counter(prefix + "solver.qp_rho_updates")),
      warm_hits(registry.counter(prefix + "solver.qp_warm_hits")),
      kkt_refactorizations(
          registry.counter(prefix + "solver.kkt_refactorizations")),
      stage_block_ops(registry.counter(prefix + "solver.stage_block_ops")),
      qp_polish_hits(registry.counter(prefix + "solver.qp_polish_hits")),
      qloss(registry.gauge(prefix + "sim.qloss_percent")),
      duration(registry.gauge(prefix + "sim.duration_s")),
      step_latency_us(registry.histogram(prefix + "sim.step_latency_us",
                                         obs::latency_buckets_us())),
      solve_latency_us(registry.histogram(prefix + "solver.latency_us",
                                          obs::latency_buckets_us())),
      iterations(registry.histogram(prefix + "solver.iterations",
                                    obs::iteration_buckets())),
      qp_iterations(registry.histogram(prefix + "solver.qp_iterations",
                                       obs::iteration_buckets())),
      qp_iterations_cold(
          registry.histogram(prefix + "solver.qp_iterations_cold",
                             obs::iteration_buckets())),
      primal_residual(registry.histogram(prefix + "solver.primal_residual",
                                         obs::residual_buckets())),
      dual_residual(registry.histogram(prefix + "solver.dual_residual",
                                       obs::residual_buckets())),
      constraint_violation(
          registry.histogram(prefix + "solver.constraint_violation",
                             obs::residual_buckets())) {}

void DiagnosticsSink::begin(const RunContext& ctx) {
  dt_ = ctx.dt;
  local_ = Local{};
  // Every step is simulated whether or not this sink sees its sample
  // (eventful_samples_only), so the step count is a run constant.
  local_.steps = ctx.steps;
}

void DiagnosticsSink::record(const StepSample& sample) {
  // Scalars go into plain locals — the shared atomic instruments are
  // only touched from end() and from the histogram records below.
  // qloss is cumulative, so the latest delivered sample (at worst the
  // final step, which is always eventful) carries the run total.
  local_.qloss_percent = sample.qloss_cum_percent;
  if (!sample.rec.feasible) ++local_.infeasible;
  if (sample.step_time_us > 0.0)
    instruments_.step_latency_us.record(sample.step_time_us);

  const core::SolveDiagnostics& s = sample.rec.solve;
  if (!s.present) return;
  ++local_.solves;
  if (s.fallback) ++local_.fallbacks;
  if (!s.converged) ++local_.nonconverged;
  local_.rho_updates += s.qp_rho_updates;
  local_.warm_hits += s.qp_warm_hits;
  local_.kkt_refactorizations += s.kkt_refactorizations;
  local_.stage_block_ops += s.stage_block_ops;
  local_.qp_polish_hits += s.qp_polish_hits;
  instruments_.solve_latency_us.record(s.solve_time_us);
  // The two transcriptions report different inner-loop counts; record
  // whichever ran so the histograms stay per-solver-family.
  if (s.iterations)
    instruments_.iterations.record(static_cast<double>(s.iterations));
  if (s.qp_iterations) {
    instruments_.qp_iterations.record(static_cast<double>(s.qp_iterations));
    // The cold slice: fallback steps ran with no warm start, so the
    // gap between this histogram's mean and the overall mean is the
    // iteration saving the warm start buys.
    if (s.fallback)
      instruments_.qp_iterations_cold.record(
          static_cast<double>(s.qp_iterations));
  }
  if (s.primal_residual > 0.0)
    instruments_.primal_residual.record(s.primal_residual);
  if (s.dual_residual > 0.0)
    instruments_.dual_residual.record(s.dual_residual);
  if (s.constraint_violation > 0.0)
    instruments_.constraint_violation.record(s.constraint_violation);
}

void DiagnosticsSink::end(const core::PlantState&) {
  instruments_.steps.add(local_.steps);
  if (local_.infeasible) instruments_.infeasible.add(local_.infeasible);
  if (local_.solves) instruments_.solves.add(local_.solves);
  if (local_.fallbacks) instruments_.fallbacks.add(local_.fallbacks);
  if (local_.nonconverged)
    instruments_.nonconverged.add(local_.nonconverged);
  if (local_.rho_updates) instruments_.rho_updates.add(local_.rho_updates);
  if (local_.warm_hits) instruments_.warm_hits.add(local_.warm_hits);
  if (local_.kkt_refactorizations)
    instruments_.kkt_refactorizations.add(local_.kkt_refactorizations);
  if (local_.stage_block_ops)
    instruments_.stage_block_ops.add(local_.stage_block_ops);
  if (local_.qp_polish_hits)
    instruments_.qp_polish_hits.add(local_.qp_polish_hits);
  instruments_.qloss.set(local_.qloss_percent);
  instruments_.duration.set(static_cast<double>(local_.steps) * dt_);
}

// --- JsonlEventSink -----------------------------------------------------

JsonlEventSink::JsonlEventSink(const std::string& path, size_t every)
    : writer_(path), every_(every ? every : 1) {}

void JsonlEventSink::begin(const RunContext& ctx) {
  dt_ = ctx.dt;
  // Reset per-run state: a sink re-armed for a new run (lane backfill)
  // must not report the previous occupant's final qloss if the new run
  // ends before any sample is recorded.
  qloss_final_ = 0.0;
  Json e = Json::object();
  e.set("event", "run_begin");
  e.set("schema", "otem.events.v2");
  e.set("steps", ctx.steps);
  e.set("dt_s", ctx.dt);
  e.set("t_battery0_k", ctx.initial.t_battery_k);
  e.set("t_coolant0_k", ctx.initial.t_coolant_k);
  e.set("soc0_percent", ctx.initial.soc_percent);
  e.set("soe0_percent", ctx.initial.soe_percent);
  writer_.write(e);
}

Json JsonlEventSink::step_event(const StepSample& sample, double dt) {
  const core::StepRecord& rec = sample.rec;
  Json e = Json::object();
  e.set("event", "step");
  e.set("k", sample.k);
  e.set("t_s", static_cast<double>(sample.k) * dt);
  e.set("p_load_w", rec.p_load_w);
  e.set("p_cooler_w", rec.p_cooler_w);
  e.set("p_cap_w", rec.e_cap_j / dt);
  e.set("tb_k", sample.state.t_battery_k);
  e.set("tc_k", sample.state.t_coolant_k);
  e.set("soc_percent", sample.state.soc_percent);
  e.set("soe_percent", sample.state.soe_percent);
  e.set("qloss_percent", sample.qloss_cum_percent);
  e.set("teb", sample.teb);
  e.set("feasible", rec.feasible);
  e.set("step_us", sample.step_time_us);
  const core::SolveDiagnostics& s = rec.solve;
  if (s.present) {
    Json solve = Json::object();
    solve.set("converged", s.converged);
    solve.set("fallback", s.fallback);
    solve.set("iterations", s.iterations);
    solve.set("sqp_rounds", s.sqp_rounds);
    solve.set("qp_iterations", s.qp_iterations);
    solve.set("qp_rho_updates", s.qp_rho_updates);
    solve.set("qp_warm_hits", s.qp_warm_hits);
    solve.set("kkt_refactorizations", s.kkt_refactorizations);
    // Banded KKT path only; 0 (and absent) on the dense/shooting paths.
    if (s.stage_block_ops) solve.set("stage_block_ops", s.stage_block_ops);
    if (s.qp_polish_hits) solve.set("qp_polish_hits", s.qp_polish_hits);
    solve.set("cost", s.cost);
    solve.set("constraint_violation", s.constraint_violation);
    solve.set("primal_residual", s.primal_residual);
    solve.set("dual_residual", s.dual_residual);
    solve.set("latency_us", s.solve_time_us);
    e.set("solve", std::move(solve));
  }
  return e;
}

void JsonlEventSink::record(const StepSample& sample) {
  qloss_final_ = sample.qloss_cum_percent;
  if (sample.k % every_ != 0) return;
  writer_.write(step_event(sample, dt_));
}

void JsonlEventSink::end(const core::PlantState& final_state) {
  Json e = Json::object();
  e.set("event", "run_end");
  e.set("qloss_percent", qloss_final_);
  e.set("tb_final_k", final_state.t_battery_k);
  e.set("soe_final_percent", final_state.soe_percent);
  writer_.write(e);
  writer_.close();
}

}  // namespace otem::sim
