// step_sink.h — streaming per-step telemetry pipeline.
//
// The simulator's step loop no longer owns any accounting: it pushes
// one StepSample per plant step through a chain of StepSinks, and the
// sinks decide what becomes of the telemetry. Three ship with the
// library:
//
//   MetricsAccumulator — the RunResult arithmetic (Algorithm 1 outputs,
//                        energy breakdown, thermal safety), O(1) memory.
//   TraceRecorder      — the in-RAM RunTrace (opt-in, O(steps) memory).
//   CsvStreamSink      — per-step telemetry streamed straight to disk,
//                        O(1) memory in mission length; what fleet runs
//                        and multi-hour missions attach instead of an
//                        in-RAM trace.
//
// Accumulation order in MetricsAccumulator matches the pre-sink
// simulator exactly, so RunResult values are bit-identical to the old
// inlined loop (tests/test_scenario_engine.cpp enforces this).
#pragma once

#include <fstream>
#include <string>

#include "core/methodology.h"
#include "core/system_spec.h"
#include "sim/simulator.h"

namespace otem::sim {

/// Per-run constants handed to every sink before the first step.
struct RunContext {
  const core::SystemSpec& spec;
  double dt = 1.0;            ///< step period [s]
  size_t steps = 0;           ///< mission length
  core::PlantState initial;   ///< state before the first step
};

/// Everything one plant step produced. `state` is the plant state AFTER
/// the step; `qloss_cum_percent` is the running capacity-loss sum
/// including this step; `teb` is the combined thermal/energy buffer in
/// [0, 1], computed only when some attached sink wants_teb() (NaN
/// otherwise — it costs a model evaluation per step).
struct StepSample {
  size_t k = 0;
  const core::StepRecord& rec;
  const core::PlantState& state;
  double qloss_cum_percent = 0.0;
  double teb = 0.0;
  /// Wall clock of the whole plant step (methodology.step). SAMPLED:
  /// measured only when obs::enabled() and step index k is a multiple
  /// of the gcd of the attached sinks' timing_stride()s; 0 on untimed
  /// steps. Sinks must treat 0 as "not measured this step".
  double step_time_us = 0.0;
};

class StepSink {
 public:
  virtual ~StepSink() = default;

  /// True when this sink consumes StepSample::teb; the simulator skips
  /// the TEB evaluation entirely when no attached sink wants it.
  virtual bool wants_teb() const { return false; }

  /// Stride at which this sink wants StepSample::step_time_us filled:
  /// 0 = never (the default — the simulator touches no clock), 1 =
  /// every step, N = one step in N. The simulator times at the gcd of
  /// all attached strides, so a sink may see MORE timed samples than it
  /// asked for, never fewer. Sampling exists because two clock reads
  /// rival a reactive baseline's entire step cost.
  virtual size_t timing_stride() const { return 0; }

  /// True when this sink only needs EVENTFUL samples: wall-clock timed,
  /// infeasible, solver-backed (solve.present), or the final step of
  /// the run (always delivered, so running totals can close). The
  /// simulator skips the record() call entirely on uneventful steps —
  /// for a reactive baseline that turns per-step diagnostics dispatch
  /// into nothing. Sinks that consume the full telemetry stream (trace,
  /// CSV, accounting) keep the default false.
  virtual bool eventful_samples_only() const { return false; }

  virtual void begin(const RunContext& ctx) { (void)ctx; }
  virtual void record(const StepSample& sample) = 0;
  virtual void end(const core::PlantState& final_state) {
    (void)final_state;
  }
};

/// Owns the RunResult arithmetic the simulator used to inline: same
/// accumulation order step by step, so results stay bit-identical.
/// max_t_battery_k is seeded from the initial state, so a mission that
/// only ever cools reports its true (initial) maximum.
class MetricsAccumulator final : public StepSink {
 public:
  void begin(const RunContext& ctx) override;
  void record(const StepSample& sample) override;
  void end(const core::PlantState& final_state) override;

  /// The finished result (valid after end()); trace fields are empty.
  const RunResult& result() const { return result_; }
  RunResult take() { return std::move(result_); }

 private:
  RunResult result_;
  double dt_ = 1.0;
  double t_max_k_ = 0.0;
  size_t steps_ = 0;
};

/// Records the full in-RAM RunTrace (the pre-refactor record_trace
/// behaviour).
class TraceRecorder final : public StepSink {
 public:
  bool wants_teb() const override { return true; }
  void begin(const RunContext& ctx) override;
  void record(const StepSample& sample) override;

  const RunTrace& trace() const { return trace_; }
  RunTrace take() { return std::move(trace_); }

 private:
  RunTrace trace_;
  double dt_ = 1.0;
};

/// Streams one CSV row per step to `path` — constant memory no matter
/// how long the mission runs. Column schema (stable; the golden-file
/// test pins it):
///
///   t_s, p_load_w, p_cooler_w, p_cap_w, i_bat_a, tb_c, tc_c,
///   soc_percent, soe_percent, qloss_percent, teb, q_bat_w, t_inlet_c
///
/// The first 11 columns match what `otem_cli trace_csv=` historically
/// dumped from the in-RAM trace; q_bat_w / t_inlet_c complete the
/// telemetry. Stream failure (full disk) is detected in record()/end()
/// and raised as SimError with the path — telemetry is never silently
/// truncated.
class CsvStreamSink final : public StepSink {
 public:
  /// Opens `path` for writing; throws SimError when that fails.
  /// `precision` is the fixed number of decimals per cell.
  explicit CsvStreamSink(const std::string& path, int precision = 6);

  bool wants_teb() const override { return true; }
  void begin(const RunContext& ctx) override;
  void record(const StepSample& sample) override;
  void end(const core::PlantState& final_state) override;

  const std::string& path() const { return path_; }
  size_t rows_written() const { return rows_; }

 private:
  std::string path_;
  std::ofstream out_;
  int precision_;
  double dt_ = 1.0;
  size_t rows_ = 0;
};

}  // namespace otem::sim
