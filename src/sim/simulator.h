// simulator.h — closed-loop plant simulator (paper Algorithm 1 outer
// loop, generalised over methodologies).
//
// Drives any Methodology through a power-request trace. The step loop
// itself is thin: per step it advances the plant and pushes a
// StepSample through a chain of StepSinks (sim/step_sink.h) that own
// all accounting — RunResult arithmetic, the in-RAM trace, streaming
// CSV telemetry. run() is the classic convenience wrapper (metrics +
// optional trace); run_with_sinks() is the composable entry point.
#pragma once

#include <vector>

#include "common/timeseries.h"
#include "core/methodology.h"
#include "core/system_spec.h"
#include "core/teb.h"
#include "exec/stop_token.h"

namespace otem::sim {

class StepSink;

/// Full per-step telemetry, recorded when RunOptions::record_trace.
struct RunTrace {
  TimeSeries t_battery_k;  ///< T_b after each step
  TimeSeries t_coolant_k;
  TimeSeries soc_percent;
  TimeSeries soe_percent;
  TimeSeries p_load_w;       ///< EV request served
  TimeSeries p_cooler_w;     ///< cooler electric power
  TimeSeries p_cap_w;        ///< ultracap terminal power (discharge +)
  TimeSeries q_bat_w;        ///< battery heat generation
  TimeSeries t_inlet_k;      ///< coolant inlet applied
  TimeSeries i_bat_a;
  TimeSeries qloss_percent;  ///< cumulative capacity loss
  TimeSeries teb;            ///< combined TEB in [0, 1]
};

struct RunResult {
  double duration_s = 0.0;

  // Algorithm 1 outputs.
  double qloss_percent = 0.0;   ///< total battery capacity loss
  double energy_hees_j = 0.0;   ///< battery + ultracap energy consumed

  // Energy breakdown.
  double energy_battery_j = 0.0;
  double energy_cap_j = 0.0;
  double energy_cooling_j = 0.0;  ///< cooler + pump (subset of HEES energy
                                  ///< for self-powered coolers)
  double energy_loss_j = 0.0;     ///< resistive + conversion losses

  /// The paper's Fig. 9 / Table I metric: HEES energy over duration [W].
  double average_power_w = 0.0;

  // Thermal safety (C1).
  double max_t_battery_k = 0.0;
  double thermal_violation_s = 0.0;  ///< time spent above the C1 ceiling

  size_t infeasible_steps = 0;  ///< physical clamps fired (reliability)
  double unserved_energy_j = 0.0;  ///< bus energy the HEES failed to deliver
  core::PlantState final_state;

  RunTrace trace;  ///< populated when requested
};

struct RunOptions {
  core::PlantState initial;  ///< defaults to the paper's x0
  bool record_trace = true;
  /// Cooperative stop: consulted before every plant step. When it
  /// fires, attached sinks are FINALIZED (end() runs, streams flush)
  /// with whatever steps completed, then otem::SimCancelled is thrown —
  /// a cancelled mission leaves closed files and closed running totals,
  /// never a truncated stream. Default-constructed = never stops, and
  /// costs one pointer test per step.
  exec::StopToken stop;
};

class Simulator {
 public:
  explicit Simulator(const core::SystemSpec& spec);

  /// Run `methodology` over the power-request trace. Compatibility
  /// wrapper over run_with_sinks(): a MetricsAccumulator plus, when
  /// options.record_trace, a TraceRecorder.
  RunResult run(core::Methodology& methodology,
                const TimeSeries& power_request,
                const RunOptions& options = {}) const;

  /// Drive the step loop, pushing every step through `sinks` (all
  /// non-null, caller-owned). options.record_trace is ignored here —
  /// attach a TraceRecorder instead.
  void run_with_sinks(core::Methodology& methodology,
                      const TimeSeries& power_request,
                      const RunOptions& options,
                      const std::vector<StepSink*>& sinks) const;

  const core::SystemSpec& spec() const { return spec_; }

 private:
  core::SystemSpec spec_;
  core::TebMetric teb_;
};

}  // namespace otem::sim
