// simulator.h — closed-loop plant simulator (paper Algorithm 1 outer
// loop, generalised over methodologies).
//
// Drives any Methodology through a power-request trace, accumulating
// the two outputs of Algorithm 1 — capacity loss Q_loss and HEES energy
// `Energy` — plus the thermal/reliability telemetry the figures need.
#pragma once

#include "common/timeseries.h"
#include "core/methodology.h"
#include "core/system_spec.h"
#include "core/teb.h"

namespace otem::sim {

/// Full per-step telemetry, recorded when RunOptions::record_trace.
struct RunTrace {
  TimeSeries t_battery_k;  ///< T_b after each step
  TimeSeries t_coolant_k;
  TimeSeries soc_percent;
  TimeSeries soe_percent;
  TimeSeries p_load_w;       ///< EV request served
  TimeSeries p_cooler_w;     ///< cooler electric power
  TimeSeries p_cap_w;        ///< ultracap terminal power (discharge +)
  TimeSeries q_bat_w;        ///< battery heat generation
  TimeSeries t_inlet_k;      ///< coolant inlet applied
  TimeSeries i_bat_a;
  TimeSeries qloss_percent;  ///< cumulative capacity loss
  TimeSeries teb;            ///< combined TEB in [0, 1]
};

struct RunResult {
  double duration_s = 0.0;

  // Algorithm 1 outputs.
  double qloss_percent = 0.0;   ///< total battery capacity loss
  double energy_hees_j = 0.0;   ///< battery + ultracap energy consumed

  // Energy breakdown.
  double energy_battery_j = 0.0;
  double energy_cap_j = 0.0;
  double energy_cooling_j = 0.0;  ///< cooler + pump (subset of HEES energy
                                  ///< for self-powered coolers)
  double energy_loss_j = 0.0;     ///< resistive + conversion losses

  /// The paper's Fig. 9 / Table I metric: HEES energy over duration [W].
  double average_power_w = 0.0;

  // Thermal safety (C1).
  double max_t_battery_k = 0.0;
  double thermal_violation_s = 0.0;  ///< time spent above the C1 ceiling

  size_t infeasible_steps = 0;  ///< physical clamps fired (reliability)
  double unserved_energy_j = 0.0;  ///< bus energy the HEES failed to deliver
  core::PlantState final_state;

  RunTrace trace;  ///< populated when requested
};

struct RunOptions {
  core::PlantState initial;  ///< defaults to the paper's x0
  bool record_trace = true;
};

class Simulator {
 public:
  explicit Simulator(const core::SystemSpec& spec);

  /// Run `methodology` over the power-request trace.
  RunResult run(core::Methodology& methodology,
                const TimeSeries& power_request,
                const RunOptions& options = {}) const;

 private:
  core::SystemSpec spec_;
  core::TebMetric teb_;
};

}  // namespace otem::sim
