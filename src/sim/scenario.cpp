#include "sim/scenario.h"

#include <memory>
#include <vector>

#include "common/error.h"
#include "core/methodology_registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/obs_sink.h"
#include "sim/step_sink.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem::sim {

Scenario Scenario::from_config(const Config& cfg) {
  Scenario sc;
  sc.methodology = cfg.get_string("method", sc.methodology);
  sc.cycle = cfg.get_string("cycle", sc.cycle);
  sc.cycle_csv = cfg.get_string("cycle_csv", sc.cycle_csv);
  sc.time_column = cfg.get_string("time_column", sc.time_column);
  sc.speed_column = cfg.get_string("speed_column", sc.speed_column);
  sc.synthetic = cfg.get_bool("synthetic", sc.synthetic);
  sc.synthetic_seed = static_cast<std::uint64_t>(
      cfg.get_long("synthetic_seed", static_cast<long>(sc.synthetic_seed)));
  sc.synthetic_duration_s =
      cfg.get_double("synthetic_duration_s", sc.synthetic_duration_s);
  sc.synthetic_max_speed_mps =
      cfg.get_double("synthetic_max_speed_mps", sc.synthetic_max_speed_mps);
  const long repeats = cfg.get_long("repeats", 1);
  OTEM_REQUIRE(repeats >= 1, "scenario repeats must be >= 1");
  sc.repeats = static_cast<size_t>(repeats);
  sc.soak = cfg.get_bool("soak", sc.soak);
  sc.initial.t_battery_k =
      cfg.get_double("t_battery0_k", sc.initial.t_battery_k);
  sc.initial.t_coolant_k =
      cfg.get_double("t_coolant0_k", sc.initial.t_coolant_k);
  sc.initial.soe_percent = cfg.get_double("soe0", sc.initial.soe_percent);
  sc.initial.soc_percent = cfg.get_double("soc0", sc.initial.soc_percent);
  sc.record_trace = cfg.get_bool("record_trace", sc.record_trace);
  sc.trace_csv = cfg.get_string("trace_csv", sc.trace_csv);
  sc.metrics_out = cfg.get_string("metrics_out", sc.metrics_out);
  sc.events_jsonl = cfg.get_string("events_jsonl", sc.events_jsonl);
  const long every = cfg.get_long("events_every", 1);
  OTEM_REQUIRE(every >= 1, "events_every must be >= 1");
  sc.events_every = static_cast<size_t>(every);
  sc.trace_out = cfg.get_string("trace_out", sc.trace_out);
  return sc;
}

namespace {
TimeSeries scenario_speed(const Scenario& sc) {
  if (!sc.cycle_csv.empty()) {
    return vehicle::load_speed_csv(sc.cycle_csv, sc.time_column,
                                   sc.speed_column);
  }
  if (sc.synthetic) {
    return vehicle::generate_synthetic(sc.synthetic_seed,
                                       sc.synthetic_duration_s,
                                       sc.synthetic_max_speed_mps);
  }
  return vehicle::generate(vehicle::cycle_from_string(sc.cycle));
}
}  // namespace

TimeSeries scenario_power_trace(const Scenario& scenario,
                                const core::SystemSpec& spec) {
  return vehicle::Powertrain(spec.vehicle)
      .power_trace(scenario_speed(scenario))
      .repeated(scenario.repeats);
}

ScenarioOutcome run_scenario(const Scenario& scenario, const Config& cfg) {
  return run_scenario(scenario, core::SystemSpec::from_config(cfg), cfg);
}

ScenarioOutcome run_scenario(const Scenario& scenario,
                             const core::SystemSpec& base_spec,
                             const Config& cfg) {
  return run_scenario(scenario, base_spec, cfg, {});
}

ScenarioOutcome run_scenario(const Scenario& scenario,
                             const core::SystemSpec& base_spec,
                             const Config& cfg,
                             const std::vector<StepSink*>& extra_sinks) {
  return run_scenario(scenario, base_spec, cfg, extra_sinks,
                      exec::StopToken());
}

namespace {
/// Turns tracing on for a trace_out= run and restores the previous
/// state on scope exit (exception-safe; concurrent runs that also
/// enabled tracing are unaffected because enabling is idempotent and
/// each run restores what IT saw).
struct TraceEnableGuard {
  bool active;
  bool previous = false;
  explicit TraceEnableGuard(bool enable) : active(enable) {
    if (active) {
      previous = obs::trace_enabled();
      obs::set_trace_enabled(true);
    }
  }
  ~TraceEnableGuard() {
    if (active) obs::set_trace_enabled(previous);
  }
};
}  // namespace

ScenarioOutcome run_scenario(const Scenario& scenario,
                             const core::SystemSpec& base_spec,
                             const Config& cfg,
                             const std::vector<StepSink*>& extra_sinks,
                             const exec::StopToken& stop) {
  const TraceEnableGuard trace_guard(!scenario.trace_out.empty());
  core::SystemSpec spec = base_spec;
  if (scenario.ambient_k > 0.0) spec.ambient_k = scenario.ambient_k;

  const TimeSeries speed = scenario_speed(scenario);
  ScenarioOutcome outcome;
  outcome.distance_m = vehicle::stats_of(speed).distance_m *
                       static_cast<double>(scenario.repeats);
  outcome.power = vehicle::Powertrain(spec.vehicle)
                      .power_trace(speed)
                      .repeated(scenario.repeats);

  RunOptions options;
  options.initial = scenario.initial;
  if (scenario.soak) {
    options.initial.t_battery_k = spec.ambient_k;
    options.initial.t_coolant_k = spec.ambient_k;
  }
  options.record_trace = scenario.record_trace;
  options.stop = stop;

  auto methodology =
      core::make_methodology(scenario.methodology, spec, cfg);

  MetricsAccumulator metrics;
  TraceRecorder trace;
  std::vector<StepSink*> sinks{&metrics};
  if (scenario.record_trace) sinks.push_back(&trace);
  std::unique_ptr<CsvStreamSink> csv;
  if (!scenario.trace_csv.empty()) {
    csv = std::make_unique<CsvStreamSink>(scenario.trace_csv);
    sinks.push_back(csv.get());
  }
  obs::MetricsRegistry registry;
  std::unique_ptr<DiagnosticsSink> diagnostics;
  if (!scenario.metrics_out.empty()) {
    diagnostics = std::make_unique<DiagnosticsSink>(registry);
    sinks.push_back(diagnostics.get());
  }
  std::unique_ptr<JsonlEventSink> events;
  if (!scenario.events_jsonl.empty()) {
    events = std::make_unique<JsonlEventSink>(scenario.events_jsonl,
                                              scenario.events_every);
    sinks.push_back(events.get());
  }
  for (StepSink* sink : extra_sinks) sinks.push_back(sink);

  {
    const obs::TraceSpan run_span("scenario.run");
    const Simulator simulator(spec);
    simulator.run_with_sinks(*methodology, outcome.power, options, sinks);
  }
  outcome.result = metrics.take();
  if (scenario.record_trace) outcome.result.trace = trace.take();
  if (!scenario.metrics_out.empty())
    obs::write_metrics_json(scenario.metrics_out, registry);
  if (!scenario.trace_out.empty())
    obs::TraceCollector().write_chrome_trace(scenario.trace_out);
  return outcome;
}

}  // namespace otem::sim
