#include "sim/report.h"

#include "common/strings.h"

namespace otem::sim {

Json run_result_to_json(const RunResult& r) {
  Json j = Json::object();
  j.set("duration_s", r.duration_s);
  j.set("qloss_percent", r.qloss_percent);
  j.set("energy_hees_j", r.energy_hees_j);
  j.set("energy_battery_j", r.energy_battery_j);
  j.set("energy_cap_j", r.energy_cap_j);
  j.set("energy_cooling_j", r.energy_cooling_j);
  j.set("energy_loss_j", r.energy_loss_j);
  j.set("average_power_w", r.average_power_w);
  j.set("max_t_battery_k", r.max_t_battery_k);
  j.set("thermal_violation_s", r.thermal_violation_s);
  j.set("infeasible_steps", r.infeasible_steps);
  j.set("unserved_energy_j", r.unserved_energy_j);
  Json final_state = Json::object();
  final_state.set("t_battery_k", r.final_state.t_battery_k);
  final_state.set("t_coolant_k", r.final_state.t_coolant_k);
  final_state.set("soc_percent", r.final_state.soc_percent);
  final_state.set("soe_percent", r.final_state.soe_percent);
  j.set("final_state", std::move(final_state));
  return j;
}

Json run_result_to_hex_json(const RunResult& r) {
  const auto hex = [](double v) { return strings::hex_double(v); };
  Json j = Json::object();
  j.set("duration_s", hex(r.duration_s));
  j.set("qloss_percent", hex(r.qloss_percent));
  j.set("energy_hees_j", hex(r.energy_hees_j));
  j.set("energy_battery_j", hex(r.energy_battery_j));
  j.set("energy_cap_j", hex(r.energy_cap_j));
  j.set("energy_cooling_j", hex(r.energy_cooling_j));
  j.set("energy_loss_j", hex(r.energy_loss_j));
  j.set("average_power_w", hex(r.average_power_w));
  j.set("max_t_battery_k", hex(r.max_t_battery_k));
  j.set("thermal_violation_s", hex(r.thermal_violation_s));
  j.set("infeasible_steps", r.infeasible_steps);
  j.set("unserved_energy_j", hex(r.unserved_energy_j));
  Json final_state = Json::object();
  final_state.set("t_battery_k", hex(r.final_state.t_battery_k));
  final_state.set("t_coolant_k", hex(r.final_state.t_coolant_k));
  final_state.set("soc_percent", hex(r.final_state.soc_percent));
  final_state.set("soe_percent", hex(r.final_state.soe_percent));
  j.set("final_state", std::move(final_state));
  return j;
}

Json run_result_to_json_with_trace(const RunResult& r) {
  Json j = run_result_to_json(r);
  Json trace = Json::object();
  trace.set("dt_s", r.trace.t_battery_k.empty()
                        ? Json()
                        : Json(r.trace.t_battery_k.dt()));
  trace.set("t_battery_k", Json::numbers(r.trace.t_battery_k.values()));
  trace.set("t_coolant_k", Json::numbers(r.trace.t_coolant_k.values()));
  trace.set("soc_percent", Json::numbers(r.trace.soc_percent.values()));
  trace.set("soe_percent", Json::numbers(r.trace.soe_percent.values()));
  trace.set("p_load_w", Json::numbers(r.trace.p_load_w.values()));
  trace.set("p_cooler_w", Json::numbers(r.trace.p_cooler_w.values()));
  trace.set("p_cap_w", Json::numbers(r.trace.p_cap_w.values()));
  trace.set("q_bat_w", Json::numbers(r.trace.q_bat_w.values()));
  trace.set("t_inlet_k", Json::numbers(r.trace.t_inlet_k.values()));
  trace.set("i_bat_a", Json::numbers(r.trace.i_bat_a.values()));
  trace.set("qloss_percent", Json::numbers(r.trace.qloss_percent.values()));
  trace.set("teb", Json::numbers(r.trace.teb.values()));
  j.set("trace", std::move(trace));
  return j;
}

Json system_spec_to_json(const core::SystemSpec& spec) {
  Json j = Json::object();
  Json bat = Json::object();
  bat.set("series", spec.battery.series);
  bat.set("parallel", spec.battery.parallel);
  bat.set("cell_capacity_ah", spec.battery.cell.capacity_ah);
  bat.set("pack_capacity_ah", spec.battery.capacity_ah());
  j.set("battery", std::move(bat));
  Json cap = Json::object();
  cap.set("capacitance_f", spec.ultracap.capacitance_f);
  cap.set("rated_voltage", spec.ultracap.rated_voltage);
  cap.set("energy_capacity_j", spec.ultracap.energy_capacity_j());
  j.set("ultracap", std::move(cap));
  Json th = Json::object();
  th.set("max_battery_temp_k", spec.thermal.max_battery_temp_k);
  th.set("max_cooler_power_w", spec.thermal.max_cooler_power_w);
  th.set("cooler_efficiency", spec.thermal.cooler_efficiency);
  j.set("thermal", std::move(th));
  j.set("ambient_k", spec.ambient_k);
  j.set("dt", spec.dt);
  return j;
}

void write_run_report(const std::string& path,
                      const core::SystemSpec& spec,
                      const std::string& methodology,
                      const RunResult& result, bool include_trace) {
  Json j = Json::object();
  j.set("spec", system_spec_to_json(spec));
  j.set("methodology", methodology);
  j.set("result", include_trace ? run_result_to_json_with_trace(result)
                                : run_result_to_json(result));
  write_json_file(path, j);
}

}  // namespace otem::sim
