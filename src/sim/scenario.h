// scenario.h — declarative mission descriptions and the shared runner.
//
// A Scenario names everything one closed-loop run needs — the route
// (named cycle, external CSV, or seeded synthetic), repeats, the
// methodology (resolved through core::MethodologyRegistry), initial
// state and telemetry options — and every front-end (otem_cli
// run/compare, the examples, the fig/table benches) funnels through the
// one run_scenario() instead of hand-assembling powertrain + simulator
// + controller. Scenarios parse straight from Config key=value
// overrides, so "one more experiment" is a command line, not a new
// main().
//
// Config keys read by Scenario::from_config (all optional):
//   method=<registry name>          default "otem"
//   cycle=<UDDS|US06|...>           default "UDDS"
//   cycle_csv=<path> [time_column=t speed_column=v]   external route
//   synthetic=true synthetic_seed=N synthetic_duration_s=S
//       synthetic_max_speed_mps=V   seeded synthetic route
//   repeats=N                       default 1
//   soak=true                       start pack/coolant at ambient
//   t_battery0_k= t_coolant0_k= soe0= soc0=           initial state
//   record_trace=bool               default true (in-RAM RunTrace)
//   trace_csv=<path>                stream per-step telemetry to disk
//   metrics_out=<path>              write an obs metrics snapshot (JSON)
//   events_jsonl=<path> [events_every=N]   stream per-step JSONL events
//   trace_out=<path>                enable span tracing for the run and
//                                   write a Chrome trace (otem.trace.v1)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/plant_state.h"
#include "core/system_spec.h"
#include "sim/simulator.h"

namespace otem::sim {

struct Scenario {
  std::string methodology = "otem";

  /// Route source: cycle_csv wins when set, then synthetic, then the
  /// named cycle.
  std::string cycle = "UDDS";
  std::string cycle_csv;
  std::string time_column = "t";
  std::string speed_column = "v";
  bool synthetic = false;
  std::uint64_t synthetic_seed = 1;
  double synthetic_duration_s = 900.0;
  double synthetic_max_speed_mps = 32.0;

  size_t repeats = 1;

  /// Ambient override [K]; 0 keeps the spec's ambient.
  double ambient_k = 0.0;

  /// Initial plant state; with soak=true the thermal states start at
  /// the (possibly overridden) ambient instead.
  core::PlantState initial;
  bool soak = false;

  bool record_trace = true;
  std::string trace_csv;  ///< when non-empty, stream telemetry here

  /// When non-empty, attach a DiagnosticsSink and write the metrics
  /// snapshot (schema otem.metrics.v1) here after the run.
  std::string metrics_out;
  /// When non-empty, stream per-step events (schema otem.events.v2)
  /// here; events_every decimates the step events.
  std::string events_jsonl;
  size_t events_every = 1;

  /// When non-empty, turn span tracing on for this run and write the
  /// flight recorder's contents as Chrome trace-event JSON (schema
  /// otem.trace.v1) here afterwards. Tracing state is process-global:
  /// concurrent runs share the recorder (their spans land on separate
  /// tids), and the previous enable state is restored on return.
  std::string trace_out;

  static Scenario from_config(const Config& cfg);
};

struct ScenarioOutcome {
  RunResult result;
  TimeSeries power;        ///< the request trace that was driven
  double distance_m = 0.0; ///< route distance including repeats
};

/// The resolved route power-request trace P_hat_e for `scenario` under
/// `spec` (route source resolved, repeats applied) — exactly what
/// run_scenario drives through the methodology, exposed so a serve
/// session can stream the same mission one protocol step at a time.
TimeSeries scenario_power_trace(const Scenario& scenario,
                                const core::SystemSpec& spec);

/// Run `scenario` against the spec built from `cfg`
/// (core::SystemSpec::from_config).
ScenarioOutcome run_scenario(const Scenario& scenario, const Config& cfg);

/// Run `scenario` against an explicit spec (sweeps that mutate the
/// spec programmatically); `cfg` still feeds the methodology factory.
ScenarioOutcome run_scenario(const Scenario& scenario,
                             const core::SystemSpec& spec,
                             const Config& cfg);

/// As above, with caller-owned sinks appended to the scenario's own
/// chain — how otem_cli compare aggregates per-method diagnostics into
/// one registry.
ScenarioOutcome run_scenario(const Scenario& scenario,
                             const core::SystemSpec& spec,
                             const Config& cfg,
                             const std::vector<StepSink*>& extra_sinks);

/// Fully-general form: `stop` is consulted before every plant step (see
/// RunOptions::stop) — the serve daemon passes its per-request token
/// here so deadlines and drain cancellation reach the step loop. Throws
/// otem::SimCancelled when the token fires mid-mission.
ScenarioOutcome run_scenario(const Scenario& scenario,
                             const core::SystemSpec& spec,
                             const Config& cfg,
                             const std::vector<StepSink*>& extra_sinks,
                             const exec::StopToken& stop);

}  // namespace otem::sim
