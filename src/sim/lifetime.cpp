#include "sim/lifetime.h"

#include <algorithm>

#include "common/error.h"
#include "common/units.h"

namespace otem::sim {

LifetimeResult project_lifetime(
    const core::SystemSpec& spec, const TimeSeries& power,
    const std::function<std::unique_ptr<core::Methodology>(
        const core::SystemSpec&)>& make_methodology,
    double mission_distance_m, const LifetimeOptions& options) {
  OTEM_REQUIRE(options.end_of_life_percent > 0.0,
               "end-of-life threshold must be positive");
  OTEM_REQUIRE(options.missions_per_epoch >= 1.0,
               "epoch must cover at least one mission");

  LifetimeResult result;
  const double fresh_capacity = spec.battery.cell.capacity_ah;
  double loss_percent = 0.0;
  double missions = 0.0;

  for (size_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    // Degrade the pack: lost capacity raises the C-rate of every
    // mission ampere, which Eq. 5 punishes.
    core::SystemSpec degraded = spec;
    degraded.battery.cell.capacity_ah =
        fresh_capacity * (1.0 - loss_percent / 100.0);

    const Simulator sim(degraded);
    auto methodology = make_methodology(degraded);
    RunOptions opt;
    opt.record_trace = false;
    const RunResult run = sim.run(*methodology, power, opt);

    LifetimePoint point;
    point.missions = missions;
    point.capacity_loss_percent = loss_percent;
    point.capacity_ah =
        degraded.battery.cell.capacity_ah * degraded.battery.parallel;
    point.mission_energy_j = run.energy_hees_j;
    result.curve.push_back(point);

    if (run.qloss_percent <= 0.0) break;  // ageless mission: cap epochs

    // How many missions fit in this epoch before EOL?
    const double remaining =
        options.end_of_life_percent - loss_percent;
    const double missions_left = remaining / run.qloss_percent;
    if (missions_left <= options.missions_per_epoch) {
      missions += std::max(missions_left, 0.0);
      loss_percent = options.end_of_life_percent;
      result.reached_eol = true;
      LifetimePoint eol;
      eol.missions = missions;
      eol.capacity_loss_percent = loss_percent;
      eol.capacity_ah = fresh_capacity *
                        (1.0 - loss_percent / 100.0) *
                        spec.battery.parallel;
      eol.mission_energy_j = run.energy_hees_j;
      result.curve.push_back(eol);
      break;
    }
    missions += options.missions_per_epoch;
    loss_percent += options.missions_per_epoch * run.qloss_percent;
  }

  result.missions_to_eol = missions;
  result.km_to_eol = missions * units::m_to_km(mission_distance_m);
  return result;
}

}  // namespace otem::sim
