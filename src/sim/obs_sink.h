// obs_sink.h — StepSinks that feed the observability layer.
//
// DiagnosticsSink turns the per-step StepSample stream into
// distributions inside an obs::MetricsRegistry: solver iteration /
// residual / latency histograms, step-loop timings, fallback and
// convergence counters. It BORROWS the registry, so any number of
// concurrent runs (fleet missions on the thread pool) can aggregate
// into one registry — the sharded instruments make that safe — while a
// second sink with a mission-local registry captures the per-mission
// view.
//
// JsonlEventSink streams one structured event line per step (plus a
// run_begin/run_end envelope) to disk through obs::JsonlWriter — O(1)
// memory in mission length, schema "otem.events.v2" pinned by
// tests/test_obs.cpp (v2 added solve.qp_warm_hits and
// solve.kkt_refactorizations).
#pragma once

#include <memory>
#include <string>

#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "sim/step_sink.h"

namespace otem::sim {

/// Metric catalogue (all names carry the constructor's prefix):
///   counters    sim.steps, sim.infeasible_steps, solver.solves,
///               solver.fallbacks, solver.nonconverged,
///               solver.qp_rho_updates, solver.qp_warm_hits,
///               solver.kkt_refactorizations, solver.stage_block_ops,
///               solver.qp_polish_hits
///   gauges      sim.qloss_percent, sim.duration_s
///   histograms  sim.step_latency_us, solver.latency_us,
///               solver.iterations, solver.qp_iterations,
///               solver.qp_iterations_cold, solver.primal_residual,
///               solver.dual_residual, solver.constraint_violation
///
/// solver.qp_iterations_cold is the fallback-step (cold-start) slice of
/// solver.qp_iterations: mean(qp_iterations_cold) - mean(warm steps)
/// is the per-step ADMM iteration saving the warm start buys (see
/// docs/PERFORMANCE.md).
class DiagnosticsSink final : public StepSink {
 public:
  /// One step in 64 is wall-clock timed for sim.step_latency_us; the
  /// shape of the latency distribution survives 64x decimation, and the
  /// two clock reads would otherwise rival a reactive baseline's whole
  /// step cost (the <5 % overhead budget CI enforces).
  static constexpr size_t kTimingStride = 64;

  /// The resolved instrument references for one name prefix. Resolving
  /// takes 20 mutex-guarded registry lookups — a fleet shares ONE
  /// bundle across all its missions instead of resolving per mission.
  struct Instruments {
    explicit Instruments(obs::MetricsRegistry& registry,
                         const std::string& prefix = "");
    obs::Counter& steps;
    obs::Counter& infeasible;
    obs::Counter& solves;
    obs::Counter& fallbacks;
    obs::Counter& nonconverged;
    obs::Counter& rho_updates;
    obs::Counter& warm_hits;
    obs::Counter& kkt_refactorizations;
    obs::Counter& stage_block_ops;
    obs::Counter& qp_polish_hits;
    obs::Gauge& qloss;
    obs::Gauge& duration;
    obs::Histogram& step_latency_us;
    obs::Histogram& solve_latency_us;
    obs::Histogram& iterations;
    obs::Histogram& qp_iterations;
    obs::Histogram& qp_iterations_cold;
    obs::Histogram& primal_residual;
    obs::Histogram& dual_residual;
    obs::Histogram& constraint_violation;
  };

  /// Registers (or finds) the instruments in `registry` eagerly, so the
  /// record path is lock-free. `prefix` namespaces the metric names
  /// ("fleet.", "otem.", ...).
  explicit DiagnosticsSink(obs::MetricsRegistry& registry,
                           const std::string& prefix = "")
      : instruments_(registry, prefix) {}
  /// Shares a pre-resolved bundle (fleet missions).
  explicit DiagnosticsSink(const Instruments& instruments)
      : instruments_(instruments) {}

  size_t timing_stride() const override { return kTimingStride; }
  /// Only eventful samples carry information for this sink: the step
  /// count comes from RunContext, the final qloss rides on the last
  /// sample (always delivered), and everything else is conditional on
  /// timing / infeasibility / solver presence anyway. On a reactive
  /// baseline the simulator then skips the dispatch entirely for ~63 of
  /// every 64 steps.
  bool eventful_samples_only() const override { return true; }
  void begin(const RunContext& ctx) override;
  void record(const StepSample& sample) override;
  /// Counters and gauges are accumulated in plain locals during the run
  /// and flushed to the (shared, atomic) instruments here — one atomic
  /// op per counter per RUN instead of per step. Registry snapshots are
  /// therefore complete once the run has ended.
  void end(const core::PlantState& final_state) override;

 private:
  Instruments instruments_;
  double dt_ = 1.0;
  /// Per-run accumulation, flushed by end().
  struct Local {
    std::uint64_t steps = 0;
    std::uint64_t infeasible = 0;
    std::uint64_t solves = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t nonconverged = 0;
    std::uint64_t rho_updates = 0;
    std::uint64_t warm_hits = 0;
    std::uint64_t kkt_refactorizations = 0;
    std::uint64_t stage_block_ops = 0;
    std::uint64_t qp_polish_hits = 0;
    double qloss_percent = 0.0;
  };
  Local local_;
};

/// One JSON object per line:
///   {"event":"run_begin","schema":"otem.events.v2",...}
///   {"event":"step","k":0,...,"solve":{...}}   (solve only when present)
///   {"event":"run_end",...}
/// `every` decimates: only steps with k % every == 0 emit a line
/// (run_begin/run_end always do).
class JsonlEventSink final : public StepSink {
 public:
  explicit JsonlEventSink(const std::string& path, size_t every = 1);

  bool wants_teb() const override { return true; }
  /// Time exactly the steps this sink emits.
  size_t timing_stride() const override { return every_; }
  void begin(const RunContext& ctx) override;
  void record(const StepSample& sample) override;
  void end(const core::PlantState& final_state) override;

  size_t lines_written() const { return writer_.lines_written(); }

  /// The event object for one sample — exposed so the golden-schema
  /// test can pin the line layout without driving a full run.
  static Json step_event(const StepSample& sample, double dt);

 private:
  obs::JsonlWriter writer_;
  size_t every_;
  double dt_ = 1.0;
  double qloss_final_ = 0.0;
};

}  // namespace otem::sim
