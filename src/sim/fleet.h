// fleet.h — Monte-Carlo fleet evaluation.
//
// The paper evaluates on a handful of fixed dynamometer schedules; a
// deployment decision wants DISTRIBUTIONS: how does a methodology do
// across many routes, ambient temperatures and initial conditions?
// This harness samples an ensemble of seeded synthetic missions
// (vehicle::generate_synthetic + ambient/initial-state draws) and
// reports summary statistics per metric. Fully deterministic for a
// given seed.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/batch_methodology.h"
#include "core/system_spec.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace otem::sim {

struct FleetOptions {
  size_t missions = 16;
  std::uint64_t seed = 1;

  /// Execution width: 0 = exec::default_concurrency() (honours the
  /// OTEM_THREADS environment variable), 1 = serial, N = a pool of N.
  /// Mission conditions are pre-drawn serially from the seed before any
  /// work is dispatched, so every width produces bit-identical results.
  size_t threads = 0;

  /// Synthetic route envelope.
  double min_duration_s = 600.0;
  double max_duration_s = 1500.0;
  double max_speed_mps = 32.0;

  /// Ambient temperature range the fleet operates across [K]; the pack
  /// soaks to ambient before each mission.
  double ambient_min_k = 283.15;
  double ambient_max_k = 313.15;

  /// Initial bank charge range [%].
  double soe0_min = 40.0;
  double soe0_max = 100.0;

  /// When non-empty, every mission streams its full per-step telemetry
  /// to "<prefix>mission_<index>.csv" through a CsvStreamSink — peak
  /// trace memory stays O(1) in mission length (no in-RAM RunTrace),
  /// so fleet-scale telemetry capture is safe for multi-hour missions.
  std::string telemetry_csv_prefix;

  /// Fleet-aggregate instrumentation: when set, every mission attaches
  /// a DiagnosticsSink writing (under `metrics_prefix`) into this
  /// registry. The registry's sharded instruments make concurrent
  /// missions safe; the caller snapshots/serialises after
  /// evaluate_fleet returns.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "fleet.";

  /// When non-empty, each mission additionally aggregates into its own
  /// registry and writes "<prefix>mission_<index>.metrics.json".
  std::string metrics_json_prefix;

  /// Lane width for evaluate_fleet_batched: each worker thread owns one
  /// PlantBatch stepping this many missions in lockstep (8-64 is the
  /// sweet spot; see docs/PERFORMANCE.md). Ignored by evaluate_fleet.
  size_t batch_lanes = 16;
};

/// Summary statistics of one metric across the fleet.
struct FleetStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One mission's conditions and outcome.
struct MissionOutcome {
  std::uint64_t route_seed = 0;
  double ambient_k = 0.0;
  double duration_s = 0.0;
  double distance_m = 0.0;
  RunResult result;
};

struct FleetResult {
  FleetStats qloss_percent;
  FleetStats average_power_w;
  FleetStats max_t_battery_k;
  double total_violation_s = 0.0;
  double total_unserved_j = 0.0;
  std::vector<MissionOutcome> missions;
};

/// Evaluate the methodology produced by `factory` (called once per
/// mission with that mission's spec — ambient differs per mission)
/// across the sampled fleet.
FleetResult evaluate_fleet(
    const core::SystemSpec& base_spec,
    const std::function<std::unique_ptr<core::Methodology>(
        const core::SystemSpec&)>& factory,
    const FleetOptions& options = {});

/// Batched counterpart of evaluate_fleet: same mission draws, same
/// per-mission results bit for bit (tests/test_plant_batch.cpp pins
/// this for any lane/thread count), but each worker thread owns one
/// PlantBatch stepping `options.batch_lanes` missions in lockstep
/// through the SoA plant kernels, retiring finished lanes and
/// backfilling from a shared mission queue. `batch_factory` is called
/// once per worker with the BASE spec (per-mission ambient is applied
/// per lane) and must return a non-null BatchMethodology — only
/// methodologies with a lockstep form (parallel, dual) qualify.
///
/// When options.metrics is set, utilization counters are added under
/// options.metrics_prefix: "batch_lanes_active" (mission steps served),
/// "batch_backfills" and "batch_steps" (lockstep sweeps). Unlike
/// mission results, these depend on lane packing and thread count.
FleetResult evaluate_fleet_batched(
    const core::SystemSpec& base_spec,
    const std::function<std::unique_ptr<core::BatchMethodology>(
        const core::SystemSpec&, size_t lanes)>& batch_factory,
    const FleetOptions& options = {});

}  // namespace otem::sim
