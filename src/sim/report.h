// report.h — machine-readable run reports.
//
// Serialises a RunResult (and optionally its full per-step trace) to
// JSON so external tooling — plotting notebooks, regression dashboards,
// fleet analyses — can consume simulation outcomes without parsing
// stdout tables. The CLI exposes it via `report_json=<path>`.
#pragma once

#include <string>

#include "common/json.h"
#include "core/system_spec.h"
#include "sim/simulator.h"

namespace otem::sim {

/// Summary-only report: Algorithm 1 outputs, energy breakdown, thermal
/// safety, reliability and final state.
Json run_result_to_json(const RunResult& result);

/// Full report: summary plus every recorded trace series (large).
Json run_result_to_json_with_trace(const RunResult& result);

/// The spec's headline physical parameters (for provenance in reports).
Json system_spec_to_json(const core::SystemSpec& spec);

/// Compose and write a complete report file:
/// {"spec": ..., "methodology": name, "result": ...}.
void write_run_report(const std::string& path,
                      const core::SystemSpec& spec,
                      const std::string& methodology,
                      const RunResult& result, bool include_trace = false);

}  // namespace otem::sim
