// report.h — machine-readable run reports.
//
// Serialises a RunResult (and optionally its full per-step trace) to
// JSON so external tooling — plotting notebooks, regression dashboards,
// fleet analyses — can consume simulation outcomes without parsing
// stdout tables. The CLI exposes it via `report_json=<path>`.
#pragma once

#include <string>

#include "common/json.h"
#include "core/system_spec.h"
#include "sim/simulator.h"

namespace otem::sim {

/// Summary-only report: Algorithm 1 outputs, energy breakdown, thermal
/// safety, reliability and final state.
Json run_result_to_json(const RunResult& result);

/// The same summary with every double encoded as its IEEE-754 bit
/// pattern (strings::hex_double, 16 hex digits). JSON numbers print
/// with %.12g and drop low-order bits; consumers that must reproduce a
/// local result byte-for-byte — the campaign serve fabric — read this
/// shape instead (serve requests opt in with "hex_doubles": true).
Json run_result_to_hex_json(const RunResult& result);

/// Full report: summary plus every recorded trace series (large).
Json run_result_to_json_with_trace(const RunResult& result);

/// The spec's headline physical parameters (for provenance in reports).
Json system_spec_to_json(const core::SystemSpec& spec);

/// Compose and write a complete report file:
/// {"spec": ..., "methodology": name, "result": ...}.
void write_run_report(const std::string& path,
                      const core::SystemSpec& spec,
                      const std::string& methodology,
                      const RunResult& result, bool include_trace = false);

}  // namespace otem::sim
