#include "exec/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

namespace otem::exec {

namespace {
/// Set while a thread is executing pool work; a nested parallel_for on
/// such a thread must not block on the pool it is servicing.
thread_local bool t_in_pool_task = false;

size_t env_threads() {
  const char* raw = std::getenv("OTEM_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') return 0;  // not a clean integer
  // Cap to something sane so a typo cannot fork-bomb the process.
  return static_cast<size_t>(v > 1024 ? 1024 : v);
}
}  // namespace

size_t default_concurrency() {
  const size_t env = env_threads();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

/// One parallel_for invocation. Lives on the caller's stack; workers
/// only hold a pointer while `current_` names it under the mutex.
struct ThreadPool::Batch {
  size_t n = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};    ///< next unclaimed index
  std::atomic<size_t> done{0};    ///< completed indices
  std::atomic<size_t> active{0};  ///< workers currently inside the batch
  std::exception_ptr error;       ///< first failure, guarded by pool mutex
};

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = default_concurrency();
  workers_.reserve(threads - 1);
  try {
    for (size_t i = 0; i + 1 < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  } catch (...) {
    // Could not spawn the full complement (resource limits): run with
    // whatever came up rather than failing the computation.
    if (workers_.empty()) throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Batch* batch = nullptr;
    std::shared_ptr<detail::TaskState> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ || (current_ != nullptr && batch_id_ != seen) ||
               !tasks_.empty();
      });
      if (current_ != nullptr && batch_id_ != seen) {
        // Batches first: parallel_for callers are blocked waiting,
        // submit() callers hold a handle and can afford the queue.
        batch = current_;
        seen = batch_id_;
        // Register under the mutex: the caller cannot retire the batch
        // while any registered worker is inside it.
        batch->active.fetch_add(1, std::memory_order_relaxed);
      } else if (!tasks_.empty()) {
        // Keep draining queued tasks even while stopping_: submitted
        // work always completes, so handles never wait forever.
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else if (stopping_) {
        return;
      } else {
        continue;  // spurious wake between predicate and body
      }
    }
    if (batch != nullptr) {
      run_batch(*batch);
      std::lock_guard<std::mutex> lock(mutex_);
      batch->active.fetch_sub(1, std::memory_order_relaxed);
      batch_done_.notify_all();
    } else {
      run_task(*task);
    }
  }
}

void ThreadPool::run_task(detail::TaskState& task) {
  const bool was_in_task = t_in_pool_task;
  t_in_pool_task = true;
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  t_in_pool_task = was_in_task;
  {
    std::lock_guard<std::mutex> lock(task.mutex);
    task.error = error;
    task.done = true;
  }
  task.done_cv.notify_all();
}

TaskHandle ThreadPool::submit(std::function<void()> fn) {
  auto state = std::make_shared<detail::TaskState>();
  state->fn = std::move(fn);
  if (workers_.empty() || t_in_pool_task) {
    // No one to hand it to (width-1 pool), or we ARE the pool: run
    // inline so a wait() on the handle can never deadlock.
    run_task(*state);
    return TaskHandle(std::move(state));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(state);
  }
  work_ready_.notify_one();
  return TaskHandle(std::move(state));
}

size_t ThreadPool::pending_tasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

bool TaskHandle::done() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

void TaskHandle::wait() {
  if (!state_) return;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->done_cv.wait(lock, [&] { return state_->done; });
  if (state_->error) std::rethrow_exception(state_->error);
}

void ThreadPool::run_batch(Batch& batch) {
  const bool was_in_task = t_in_pool_task;
  t_in_pool_task = true;
  for (;;) {
    const size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) break;
    try {
      (*batch.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!batch.error) batch.error = std::current_exception();
    }
    batch.done.fetch_add(1, std::memory_order_acq_rel);
  }
  t_in_pool_task = was_in_task;
}

void ThreadPool::parallel_for(size_t n,
                              const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_in_pool_task) {
    // Serial path: inline on the caller, exceptions propagate directly.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // One batch at a time: a second caller queues here until the first
  // drains, so concurrent use of a shared pool is safe (if serialised).
  std::lock_guard<std::mutex> submit(submit_mutex_);
  Batch batch;
  batch.n = n;
  batch.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &batch;
    ++batch_id_;
  }
  work_ready_.notify_all();

  // The caller works the batch too, then waits until every index is
  // complete AND every registered worker has left the batch (a worker
  // that claimed nothing still touched the index counter).
  run_batch(batch);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock, [&] {
      return batch.done.load(std::memory_order_acquire) == batch.n &&
             batch.active.load(std::memory_order_relaxed) == 0;
    });
    current_ = nullptr;
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(size_t n, const std::function<void(size_t)>& fn,
                  size_t threads) {
  if (threads == 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (threads == 0) {
    ThreadPool::global().parallel_for(n, fn);
    return;
  }
  ThreadPool pool(threads);
  pool.parallel_for(n, fn);
}

}  // namespace otem::exec
