// stop_token.h — cooperative cancellation with optional deadlines.
//
// A StopSource owns a stop request; the StopTokens it hands out are
// cheap shared views that long-running work (the simulator step loop,
// tasks on the ThreadPool) consults between units of progress. Tokens
// never interrupt anything — work stops only where it chooses to check,
// which is what makes cancellation safe around sinks, file streams and
// solver state.
//
// A deadline is just a pre-armed stop: with_deadline() makes a source
// whose tokens start reporting stop_requested() once the steady clock
// passes the given point, with no timer thread involved. The serve
// daemon uses one source per request (deadline from the client, stop
// from the drain path) so a single per-step check covers both.
//
// A default-constructed StopToken is empty and never stops; checking it
// is one pointer test, so hot loops can take a token unconditionally.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace otem::exec {

class StopSource;

class StopToken {
 public:
  StopToken() = default;

  /// True when this token is connected to a source (an empty token
  /// never reports a stop).
  bool stop_possible() const { return state_ != nullptr; }

  /// True once the source requested a stop or the deadline passed.
  bool stop_requested() const {
    if (!state_) return false;
    if (state_->stopped.load(std::memory_order_acquire)) return true;
    if (state_->has_deadline &&
        std::chrono::steady_clock::now() >= state_->deadline) {
      // Latch, so later checks skip the clock read and so the source
      // can distinguish "expired" from "never fired".
      state_->deadline_hit.store(true, std::memory_order_relaxed);
      state_->stopped.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// True when the stop came from the deadline rather than an explicit
  /// request_stop() (how serve maps SimCancelled to deadline_exceeded
  /// vs cancelled).
  bool deadline_expired() const {
    return state_ && state_->deadline_hit.load(std::memory_order_relaxed);
  }

 private:
  friend class StopSource;

  struct State {
    std::atomic<bool> stopped{false};
    std::atomic<bool> deadline_hit{false};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  explicit StopToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

class StopSource {
 public:
  StopSource() : state_(std::make_shared<StopToken::State>()) {}

  /// A source whose tokens trip once the steady clock reaches
  /// `deadline` (in addition to any explicit request_stop()).
  static StopSource with_deadline(
      std::chrono::steady_clock::time_point deadline) {
    StopSource src;
    src.state_->has_deadline = true;
    src.state_->deadline = deadline;
    return src;
  }

  StopToken token() const { return StopToken(state_); }

  /// Const: stopping mutates only the shared state the tokens watch,
  /// so a source held by const reference (e.g. in a registry of
  /// in-flight requests) can still fire.
  void request_stop() const {
    state_->stopped.store(true, std::memory_order_release);
  }

  bool stop_requested() const { return token().stop_requested(); }

 private:
  std::shared_ptr<StopToken::State> state_;
};

}  // namespace otem::exec
