// thread_pool.h — execution subsystem: a work-stealing-free, index-batch
// thread pool for the embarrassingly-parallel layers (fleet evaluation,
// parameter sweeps, bench grids), plus a submit() side door for
// independent long-lived tasks (the serve daemon's request dispatch).
//
// Design constraints, in order:
//   1. Determinism — the pool never owns random state and never decides
//      WHAT runs, only WHERE. Callers pre-draw any stochastic inputs
//      serially and index into them, so `threads=N` is bit-identical to
//      `threads=1` (see docs/THREADING.md).
//   2. No surprises — exceptions thrown by a task are captured and the
//      first one is rethrown on the calling thread after the batch
//      drains; a nested parallel_for from inside a worker degrades to a
//      serial loop instead of deadlocking.
//   3. Zero cost when off — a pool with one thread (or a 1-element
//      range) runs inline on the caller with no locks touched.
//
// Thread count resolution: explicit argument > OTEM_THREADS environment
// variable > std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace otem::exec {

/// Worker count the library defaults to: `OTEM_THREADS` when set to a
/// positive integer, else std::thread::hardware_concurrency(), else 1.
size_t default_concurrency();

namespace detail {
/// Shared state behind one submitted task; lives until the last
/// TaskHandle and the executing worker both drop it.
struct TaskState {
  std::function<void()> fn;
  std::mutex mutex;
  std::condition_variable done_cv;
  bool done = false;
  std::exception_ptr error;
};
}  // namespace detail

/// Joinable handle to one ThreadPool::submit() task. Handles are cheap
/// shared views: copies wait on the same task. Cancellation is NOT the
/// handle's job — pass the task a StopToken (exec/stop_token.h) and let
/// the work stop cooperatively; the handle then observes completion.
class TaskHandle {
 public:
  TaskHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once the task has finished running (or faulted).
  bool done() const;

  /// Block until the task completes; rethrows the task's exception
  /// here, like parallel_for does for batch tasks. No-op when invalid.
  void wait();

 private:
  friend class ThreadPool;
  explicit TaskHandle(std::shared_ptr<detail::TaskState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::TaskState> state_;
};

class ThreadPool {
 public:
  /// `threads == 0` resolves to default_concurrency(). The pool spawns
  /// `threads - 1` workers; the calling thread participates in every
  /// batch, so `threads == 1` spawns nothing and runs serially.
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + the participating caller).
  size_t thread_count() const { return workers_.size() + 1; }

  /// Run `fn(i)` for every i in [0, n), blocking until all complete.
  /// Indices are claimed dynamically, so per-index cost may vary freely.
  /// The first exception thrown by any task is rethrown here once the
  /// batch has drained. Calling parallel_for from inside a pool task
  /// runs the nested range serially on that worker (no deadlock).
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

  /// Map [0, n) through `fn`, collecting results by index.
  template <typename Fn>
  auto parallel_map(size_t n, Fn&& fn)
      -> std::vector<decltype(fn(size_t{0}))> {
    std::vector<decltype(fn(size_t{0}))> out(n);
    parallel_for(n, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Enqueue one independent task and return immediately with a
  /// joinable handle — the fire-and-join shape the serve daemon's
  /// request dispatch needs, alongside the batch-shaped parallel_for.
  /// Workers prefer batch work over queued tasks, so submit() traffic
  /// never starves an in-flight parallel_for. Two situations run the
  /// task inline on the calling thread before returning (the handle is
  /// already done): a pool with no workers (threads == 1), and a
  /// submit() from inside a pool task (waiting on a queue only this
  /// pool drains could otherwise deadlock a fully-busy pool).
  TaskHandle submit(std::function<void()> fn);

  /// Queued-but-not-started task count (diagnostics; racy by nature).
  size_t pending_tasks() const;

  /// Shared process-wide pool sized by default_concurrency(); lazily
  /// constructed on first use.
  static ThreadPool& global();

 private:
  struct Batch;

  void worker_loop();
  void run_batch(Batch& batch);
  static void run_task(detail::TaskState& task);

  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;  ///< serialises whole batches
  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  Batch* current_ = nullptr;
  std::uint64_t batch_id_ = 0;
  bool stopping_ = false;
  /// Submitted tasks awaiting a worker; drained before shutdown.
  std::deque<std::shared_ptr<detail::TaskState>> tasks_;
};

/// Convenience: parallel_for on the global pool, honouring `threads`
/// (0 = default_concurrency(), 1 = serial inline, else a dedicated pool
/// of that width for this call).
void parallel_for(size_t n, const std::function<void(size_t)>& fn,
                  size_t threads = 0);

}  // namespace otem::exec
